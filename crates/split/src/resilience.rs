//! Fault-tolerance policies for the asynchronous trainer: retransmission
//! backoff and server-side liveness tracking.

use stsl_simnet::{EndSystemId, SimDuration, SimTime};

/// Retransmission policy for lost protocol messages: exponential backoff
/// with jitter and a bounded retry budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Backoff before the first retransmission.
    pub base_backoff: SimDuration,
    /// Backoff ceiling — doubling stops here.
    pub max_backoff: SimDuration,
    /// Jitter fraction in `[0, 1]`: each backoff adds `U[0, frac · b)`.
    pub jitter_frac: f64,
    /// Total send attempts per message (first try included). After this
    /// many failures the batch is abandoned.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_backoff: SimDuration::from_millis(50),
            max_backoff: SimDuration::from_millis(2_000),
            jitter_frac: 0.2,
            max_attempts: 5,
        }
    }
}

impl RetryPolicy {
    /// Derives a policy from the legacy single-timeout knob
    /// ([`crate::ComputeModel::retry_timeout`]): first backoff at a
    /// quarter of the timeout, ceiling at four timeouts, five attempts.
    pub fn from_timeout(timeout: SimDuration) -> Self {
        let quarter = (timeout.as_micros() / 4).max(1);
        RetryPolicy {
            base_backoff: SimDuration::from_micros(quarter),
            max_backoff: SimDuration::from_micros(quarter.saturating_mul(16).max(1)),
            jitter_frac: 0.1,
            max_attempts: 5,
        }
    }

    /// Backoff before retransmission number `attempt` (1-based: the first
    /// retransmission is attempt 1). Exponential in the attempt number,
    /// capped at [`RetryPolicy::max_backoff`], plus sampled jitter.
    pub fn backoff(&self, attempt: u32, rng: &mut rand::rngs::StdRng) -> SimDuration {
        use rand::Rng;
        // The doubling factor saturates rather than wrapping: at 64+
        // failures `1 << exp` would be UB/wraparound, so shifts past the
        // u64 width clamp to u64::MAX and the multiply saturates too —
        // the ceiling below then applies as usual.
        let exp = attempt.saturating_sub(1);
        let factor = 1u64.checked_shl(exp).unwrap_or(u64::MAX);
        let base = self
            .base_backoff
            .as_micros()
            .saturating_mul(factor)
            .min(self.max_backoff.as_micros())
            .max(1);
        let jitter = if self.jitter_frac > 0.0 {
            let amp = (base as f64 * self.jitter_frac).ceil() as u64;
            if amp > 0 {
                rng.gen_range(0..amp)
            } else {
                0
            }
        } else {
            0
        };
        SimDuration::from_micros(base + jitter)
    }

    /// Whether a message that already failed `failures` times may be
    /// retransmitted.
    pub fn may_retry(&self, failures: u32) -> bool {
        failures < self.max_attempts
    }
}

/// The server's view of which end-systems are alive, from last-seen
/// bookkeeping on uplink arrivals.
#[derive(Debug, Clone)]
pub struct LivenessTracker {
    last_seen: Vec<SimTime>,
    alive: Vec<bool>,
    /// Retired end-systems finished their work; silence from them is
    /// expected and never flagged as death.
    retired: Vec<bool>,
    timeout: SimDuration,
    dead_detections: u64,
    rejoins: u64,
}

impl LivenessTracker {
    /// Creates a tracker for `n` end-systems, all considered alive and
    /// last seen at `t = 0`.
    pub fn new(n: usize, timeout: SimDuration) -> Self {
        LivenessTracker {
            last_seen: vec![SimTime::ZERO; n],
            alive: vec![true; n],
            retired: vec![false; n],
            timeout,
            dead_detections: 0,
            rejoins: 0,
        }
    }

    /// Records traffic from `id` at `at`. Returns `true` if the
    /// end-system had been declared dead and is now rejoining.
    pub fn observe(&mut self, id: EndSystemId, at: SimTime) -> bool {
        self.last_seen[id.0] = at;
        let rejoined = !self.alive[id.0];
        if rejoined {
            self.alive[id.0] = true;
            self.rejoins += 1;
        }
        rejoined
    }

    /// Marks `id` as done with its work: it will never be declared dead.
    pub fn retire(&mut self, id: EndSystemId) {
        self.retired[id.0] = true;
    }

    /// Re-admits a departed or joining end-system: clears any retirement,
    /// marks it alive and resets its last-seen clock to `at` so the
    /// silence accumulated while away is not counted against it.
    pub fn readmit(&mut self, id: EndSystemId, at: SimTime) {
        self.retired[id.0] = false;
        self.alive[id.0] = true;
        self.last_seen[id.0] = at;
    }

    /// Declares dead every non-retired end-system silent for longer than
    /// the timeout. Returns the newly dead.
    pub fn sweep(&mut self, at: SimTime) -> Vec<EndSystemId> {
        let mut newly_dead = Vec::new();
        for i in 0..self.alive.len() {
            if self.alive[i] && !self.retired[i] && at.since(self.last_seen[i]) > self.timeout {
                self.alive[i] = false;
                self.dead_detections += 1;
                newly_dead.push(EndSystemId(i));
            }
        }
        newly_dead
    }

    /// Whether `id` is currently considered alive.
    pub fn is_alive(&self, id: EndSystemId) -> bool {
        self.alive[id.0]
    }

    /// Number of end-systems currently considered alive.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Total death declarations over the run.
    pub fn dead_detections(&self) -> u64 {
        self.dead_detections
    }

    /// Total rejoin events (dead end-systems heard from again).
    pub fn rejoins(&self) -> u64 {
        self.rejoins
    }
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive delivery failures on one link before it trips open.
    pub threshold: u32,
    /// How long the breaker stays open after its first trip.
    pub base_open: SimDuration,
    /// Ceiling for the exponentially growing open window.
    pub max_open: SimDuration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 3,
            base_open: SimDuration::from_millis(100),
            max_open: SimDuration::from_millis(3_000),
        }
    }
}

/// Verdict of [`CircuitBreaker::allow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerDecision {
    /// The link is closed (or half-open probing): send now.
    Allow,
    /// The link is open: defer the send until the given time, when the
    /// breaker half-opens and the deferred send becomes the probe.
    Defer(SimTime),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LinkState {
    /// Healthy; counts consecutive failures toward the threshold.
    Closed { failures: u32 },
    /// Tripped: nothing is sent until `until`. `streak` counts how many
    /// times in a row the breaker has tripped (drives the backoff).
    Open { until: SimTime, streak: u32 },
    /// Probing after an open window: one delivery decides the fate.
    HalfOpen { streak: u32 },
}

/// Per-link circuit breaker: after `threshold` consecutive delivery
/// failures a link trips open and all sends on it are deferred; the open
/// window grows exponentially (base·2^streak, capped) while probes keep
/// failing and collapses back to closed on the first success. Pure state
/// machine — no RNG, no host clock — so runs are bit-reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    links: Vec<LinkState>,
    trips: u64,
}

impl CircuitBreaker {
    /// A breaker for `n` links, all initially closed.
    pub fn new(n: usize, cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            links: vec![LinkState::Closed { failures: 0 }; n],
            trips: 0,
        }
    }

    fn open_window(&self, streak: u32) -> SimDuration {
        let factor = 1u64.checked_shl(streak).unwrap_or(u64::MAX);
        let us = self
            .cfg
            .base_open
            .as_micros()
            .saturating_mul(factor)
            .min(self.cfg.max_open.as_micros())
            .max(1);
        SimDuration::from_micros(us)
    }

    /// Asks whether a send on `id`'s link may go out at `at`. An open
    /// breaker whose window has elapsed half-opens and admits the send as
    /// its probe.
    pub fn allow(&mut self, id: EndSystemId, at: SimTime) -> BreakerDecision {
        match self.links[id.0] {
            LinkState::Closed { .. } | LinkState::HalfOpen { .. } => BreakerDecision::Allow,
            LinkState::Open { until, streak } => {
                if at >= until {
                    self.links[id.0] = LinkState::HalfOpen { streak };
                    BreakerDecision::Allow
                } else {
                    BreakerDecision::Defer(until)
                }
            }
        }
    }

    /// Records a successful delivery on `id`'s link: the breaker closes
    /// and the failure count resets.
    pub fn record_success(&mut self, id: EndSystemId) {
        self.links[id.0] = LinkState::Closed { failures: 0 };
    }

    /// Records a delivery failure on `id`'s link at `at`. Returns `true`
    /// when this failure trips the breaker open (a failed half-open probe
    /// re-trips with a doubled window).
    pub fn record_failure(&mut self, id: EndSystemId, at: SimTime) -> bool {
        match self.links[id.0] {
            LinkState::Closed { failures } => {
                let failures = failures.saturating_add(1);
                if failures >= self.cfg.threshold.max(1) {
                    self.links[id.0] = LinkState::Open {
                        until: at + self.open_window(0),
                        streak: 0,
                    };
                    self.trips += 1;
                    true
                } else {
                    self.links[id.0] = LinkState::Closed { failures };
                    false
                }
            }
            LinkState::HalfOpen { streak } => {
                let streak = streak.saturating_add(1);
                self.links[id.0] = LinkState::Open {
                    until: at + self.open_window(streak),
                    streak,
                };
                self.trips += 1;
                true
            }
            // A failure reported while already open changes nothing: the
            // open window is the authority until it elapses.
            LinkState::Open { .. } => false,
        }
    }

    /// Whether `id`'s link is open (deferring sends) at `at`.
    pub fn is_open(&self, id: EndSystemId, at: SimTime) -> bool {
        matches!(self.links[id.0], LinkState::Open { until, .. } if at < until)
    }

    /// Total trips (closed→open and failed-probe re-trips) over the run.
    pub fn trips(&self) -> u64 {
        self.trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsl_tensor::init::rng_from_seed;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            base_backoff: SimDuration::from_millis(10),
            max_backoff: SimDuration::from_millis(80),
            jitter_frac: 0.0,
            max_attempts: 10,
        };
        let mut rng = rng_from_seed(1);
        assert_eq!(p.backoff(1, &mut rng), SimDuration::from_millis(10));
        assert_eq!(p.backoff(2, &mut rng), SimDuration::from_millis(20));
        assert_eq!(p.backoff(3, &mut rng), SimDuration::from_millis(40));
        assert_eq!(p.backoff(4, &mut rng), SimDuration::from_millis(80));
        // Capped from here on.
        assert_eq!(p.backoff(7, &mut rng), SimDuration::from_millis(80));
    }

    #[test]
    fn jitter_stays_within_fraction() {
        let p = RetryPolicy {
            base_backoff: SimDuration::from_millis(100),
            max_backoff: SimDuration::from_millis(100),
            jitter_frac: 0.5,
            max_attempts: 3,
        };
        let mut rng = rng_from_seed(2);
        for _ in 0..100 {
            let b = p.backoff(1, &mut rng).as_micros();
            assert!((100_000..150_000 + 1).contains(&b), "backoff {}", b);
        }
    }

    #[test]
    fn backoff_saturates_at_extreme_failure_counts() {
        // Regression: at 63 failures the shift reaches the top bit of a
        // u64 and at 64+ it would be undefined without the checked shift;
        // the backoff must stay pinned at the ceiling instead of wrapping
        // down to a tiny value or panicking.
        let p = RetryPolicy {
            base_backoff: SimDuration::from_millis(10),
            max_backoff: SimDuration::from_millis(500),
            jitter_frac: 0.0,
            max_attempts: u32::MAX,
        };
        let mut rng = rng_from_seed(4);
        let ceiling = SimDuration::from_millis(500);
        for attempt in [63, 64, 65, 1_000, u32::MAX] {
            assert_eq!(p.backoff(attempt, &mut rng), ceiling, "attempt {attempt}");
        }
        // Even a 1 µs base with a huge ceiling cannot wrap: 2^64 µs
        // saturates to u64::MAX before the min() applies.
        let tiny = RetryPolicy {
            base_backoff: SimDuration::from_micros(1),
            max_backoff: SimDuration::from_micros(u64::MAX),
            jitter_frac: 0.0,
            max_attempts: u32::MAX,
        };
        assert_eq!(
            tiny.backoff(65, &mut rng),
            SimDuration::from_micros(u64::MAX)
        );
        assert!(tiny.backoff(64, &mut rng) >= tiny.backoff(63, &mut rng));
    }

    #[test]
    fn retry_budget_is_enforced() {
        let p = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        assert!(p.may_retry(0));
        assert!(p.may_retry(2));
        assert!(!p.may_retry(3));
    }

    #[test]
    fn from_timeout_scales_the_legacy_knob() {
        let p = RetryPolicy::from_timeout(SimDuration::from_millis(400));
        assert_eq!(p.base_backoff, SimDuration::from_millis(100));
        assert_eq!(p.max_backoff, SimDuration::from_millis(1_600));
        assert!(p.max_attempts > 1);
    }

    #[test]
    fn liveness_detects_death_and_rejoin() {
        let t = |ms| SimTime::from_millis(ms);
        let mut lt = LivenessTracker::new(2, SimDuration::from_millis(100));
        lt.observe(EndSystemId(0), t(50));
        lt.observe(EndSystemId(1), t(50));
        assert!(lt.sweep(t(100)).is_empty());
        lt.observe(EndSystemId(0), t(150));
        // Client 1 has been silent for 101 ms -> dead.
        let dead = lt.sweep(t(151));
        assert_eq!(dead, vec![EndSystemId(1)]);
        assert!(!lt.is_alive(EndSystemId(1)));
        assert_eq!(lt.alive_count(), 1);
        assert_eq!(lt.dead_detections(), 1);
        // Heard from again -> rejoin.
        assert!(lt.observe(EndSystemId(1), t(200)));
        assert!(lt.is_alive(EndSystemId(1)));
        assert_eq!(lt.rejoins(), 1);
        // A normal observe is not a rejoin.
        assert!(!lt.observe(EndSystemId(0), t(200)));
    }

    #[test]
    fn retired_clients_are_never_declared_dead() {
        let t = |ms| SimTime::from_millis(ms);
        let mut lt = LivenessTracker::new(1, SimDuration::from_millis(10));
        lt.retire(EndSystemId(0));
        assert!(lt.sweep(t(10_000)).is_empty());
        assert!(lt.is_alive(EndSystemId(0)));
    }

    #[test]
    fn readmit_clears_retirement_and_resets_the_clock() {
        let t = |ms| SimTime::from_millis(ms);
        let mut lt = LivenessTracker::new(1, SimDuration::from_millis(100));
        lt.retire(EndSystemId(0));
        lt.readmit(EndSystemId(0), t(5_000));
        assert!(lt.is_alive(EndSystemId(0)));
        // Its silence clock restarts at readmission time: not dead at
        // 5 050 ms, dead once 100 ms of fresh silence accumulate.
        assert!(lt.sweep(t(5_050)).is_empty());
        assert_eq!(lt.sweep(t(5_101)), vec![EndSystemId(0)]);
    }

    #[test]
    fn breaker_trips_after_threshold_and_recloses_on_success() {
        let t = |ms| SimTime::from_millis(ms);
        let cfg = BreakerConfig {
            threshold: 3,
            base_open: SimDuration::from_millis(100),
            max_open: SimDuration::from_millis(400),
        };
        let mut b = CircuitBreaker::new(2, cfg);
        let id = EndSystemId(0);
        assert!(!b.record_failure(id, t(1)));
        assert!(!b.record_failure(id, t(2)));
        assert_eq!(b.allow(id, t(2)), BreakerDecision::Allow);
        assert!(b.record_failure(id, t(3)), "third failure trips");
        assert_eq!(b.trips(), 1);
        assert!(b.is_open(id, t(50)));
        assert_eq!(b.allow(id, t(50)), BreakerDecision::Defer(t(103)));
        // The other link is unaffected.
        assert_eq!(b.allow(EndSystemId(1), t(50)), BreakerDecision::Allow);
        // Window elapsed: half-open, the send is the probe.
        assert_eq!(b.allow(id, t(103)), BreakerDecision::Allow);
        b.record_success(id);
        assert!(!b.is_open(id, t(104)));
        // After a success the failure streak restarts from zero.
        assert!(!b.record_failure(id, t(105)));
        assert!(!b.record_failure(id, t(106)));
        assert!(b.record_failure(id, t(107)));
    }

    #[test]
    fn failed_probes_double_the_open_window_up_to_the_cap() {
        let t = |ms| SimTime::from_millis(ms);
        let cfg = BreakerConfig {
            threshold: 1,
            base_open: SimDuration::from_millis(100),
            max_open: SimDuration::from_millis(300),
        };
        let mut b = CircuitBreaker::new(1, cfg);
        let id = EndSystemId(0);
        assert!(b.record_failure(id, t(0)));
        assert_eq!(b.allow(id, t(50)), BreakerDecision::Defer(t(100)));
        assert_eq!(b.allow(id, t(100)), BreakerDecision::Allow);
        // Probe fails: streak 1, window 200 ms.
        assert!(b.record_failure(id, t(100)));
        assert_eq!(b.allow(id, t(150)), BreakerDecision::Defer(t(300)));
        assert_eq!(b.allow(id, t(300)), BreakerDecision::Allow);
        // Streak 2 would be 400 ms but caps at 300 ms.
        assert!(b.record_failure(id, t(300)));
        assert_eq!(b.allow(id, t(301)), BreakerDecision::Defer(t(600)));
        assert_eq!(b.trips(), 3);
        // A failure reported while open neither trips nor extends.
        assert!(!b.record_failure(id, t(302)));
        assert_eq!(b.allow(id, t(303)), BreakerDecision::Defer(t(600)));
    }
}
