//! Fault-tolerance policies for the asynchronous trainer: retransmission
//! backoff and server-side liveness tracking.

use stsl_simnet::{EndSystemId, SimDuration, SimTime};

/// Retransmission policy for lost protocol messages: exponential backoff
/// with jitter and a bounded retry budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Backoff before the first retransmission.
    pub base_backoff: SimDuration,
    /// Backoff ceiling — doubling stops here.
    pub max_backoff: SimDuration,
    /// Jitter fraction in `[0, 1]`: each backoff adds `U[0, frac · b)`.
    pub jitter_frac: f64,
    /// Total send attempts per message (first try included). After this
    /// many failures the batch is abandoned.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_backoff: SimDuration::from_millis(50),
            max_backoff: SimDuration::from_millis(2_000),
            jitter_frac: 0.2,
            max_attempts: 5,
        }
    }
}

impl RetryPolicy {
    /// Derives a policy from the legacy single-timeout knob
    /// ([`crate::ComputeModel::retry_timeout`]): first backoff at a
    /// quarter of the timeout, ceiling at four timeouts, five attempts.
    pub fn from_timeout(timeout: SimDuration) -> Self {
        let quarter = (timeout.as_micros() / 4).max(1);
        RetryPolicy {
            base_backoff: SimDuration::from_micros(quarter),
            max_backoff: SimDuration::from_micros(quarter.saturating_mul(16).max(1)),
            jitter_frac: 0.1,
            max_attempts: 5,
        }
    }

    /// Backoff before retransmission number `attempt` (1-based: the first
    /// retransmission is attempt 1). Exponential in the attempt number,
    /// capped at [`RetryPolicy::max_backoff`], plus sampled jitter.
    pub fn backoff(&self, attempt: u32, rng: &mut rand::rngs::StdRng) -> SimDuration {
        use rand::Rng;
        let exp = attempt.saturating_sub(1).min(20);
        let base = self
            .base_backoff
            .as_micros()
            .saturating_mul(1u64 << exp)
            .min(self.max_backoff.as_micros())
            .max(1);
        let jitter = if self.jitter_frac > 0.0 {
            let amp = (base as f64 * self.jitter_frac).ceil() as u64;
            if amp > 0 {
                rng.gen_range(0..amp)
            } else {
                0
            }
        } else {
            0
        };
        SimDuration::from_micros(base + jitter)
    }

    /// Whether a message that already failed `failures` times may be
    /// retransmitted.
    pub fn may_retry(&self, failures: u32) -> bool {
        failures < self.max_attempts
    }
}

/// The server's view of which end-systems are alive, from last-seen
/// bookkeeping on uplink arrivals.
#[derive(Debug, Clone)]
pub struct LivenessTracker {
    last_seen: Vec<SimTime>,
    alive: Vec<bool>,
    /// Retired end-systems finished their work; silence from them is
    /// expected and never flagged as death.
    retired: Vec<bool>,
    timeout: SimDuration,
    dead_detections: u64,
    rejoins: u64,
}

impl LivenessTracker {
    /// Creates a tracker for `n` end-systems, all considered alive and
    /// last seen at `t = 0`.
    pub fn new(n: usize, timeout: SimDuration) -> Self {
        LivenessTracker {
            last_seen: vec![SimTime::ZERO; n],
            alive: vec![true; n],
            retired: vec![false; n],
            timeout,
            dead_detections: 0,
            rejoins: 0,
        }
    }

    /// Records traffic from `id` at `at`. Returns `true` if the
    /// end-system had been declared dead and is now rejoining.
    pub fn observe(&mut self, id: EndSystemId, at: SimTime) -> bool {
        self.last_seen[id.0] = at;
        let rejoined = !self.alive[id.0];
        if rejoined {
            self.alive[id.0] = true;
            self.rejoins += 1;
        }
        rejoined
    }

    /// Marks `id` as done with its work: it will never be declared dead.
    pub fn retire(&mut self, id: EndSystemId) {
        self.retired[id.0] = true;
    }

    /// Declares dead every non-retired end-system silent for longer than
    /// the timeout. Returns the newly dead.
    pub fn sweep(&mut self, at: SimTime) -> Vec<EndSystemId> {
        let mut newly_dead = Vec::new();
        for i in 0..self.alive.len() {
            if self.alive[i] && !self.retired[i] && at.since(self.last_seen[i]) > self.timeout {
                self.alive[i] = false;
                self.dead_detections += 1;
                newly_dead.push(EndSystemId(i));
            }
        }
        newly_dead
    }

    /// Whether `id` is currently considered alive.
    pub fn is_alive(&self, id: EndSystemId) -> bool {
        self.alive[id.0]
    }

    /// Number of end-systems currently considered alive.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Total death declarations over the run.
    pub fn dead_detections(&self) -> u64 {
        self.dead_detections
    }

    /// Total rejoin events (dead end-systems heard from again).
    pub fn rejoins(&self) -> u64 {
        self.rejoins
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsl_tensor::init::rng_from_seed;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            base_backoff: SimDuration::from_millis(10),
            max_backoff: SimDuration::from_millis(80),
            jitter_frac: 0.0,
            max_attempts: 10,
        };
        let mut rng = rng_from_seed(1);
        assert_eq!(p.backoff(1, &mut rng), SimDuration::from_millis(10));
        assert_eq!(p.backoff(2, &mut rng), SimDuration::from_millis(20));
        assert_eq!(p.backoff(3, &mut rng), SimDuration::from_millis(40));
        assert_eq!(p.backoff(4, &mut rng), SimDuration::from_millis(80));
        // Capped from here on.
        assert_eq!(p.backoff(7, &mut rng), SimDuration::from_millis(80));
    }

    #[test]
    fn jitter_stays_within_fraction() {
        let p = RetryPolicy {
            base_backoff: SimDuration::from_millis(100),
            max_backoff: SimDuration::from_millis(100),
            jitter_frac: 0.5,
            max_attempts: 3,
        };
        let mut rng = rng_from_seed(2);
        for _ in 0..100 {
            let b = p.backoff(1, &mut rng).as_micros();
            assert!((100_000..150_000 + 1).contains(&b), "backoff {}", b);
        }
    }

    #[test]
    fn retry_budget_is_enforced() {
        let p = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        assert!(p.may_retry(0));
        assert!(p.may_retry(2));
        assert!(!p.may_retry(3));
    }

    #[test]
    fn from_timeout_scales_the_legacy_knob() {
        let p = RetryPolicy::from_timeout(SimDuration::from_millis(400));
        assert_eq!(p.base_backoff, SimDuration::from_millis(100));
        assert_eq!(p.max_backoff, SimDuration::from_millis(1_600));
        assert!(p.max_attempts > 1);
    }

    #[test]
    fn liveness_detects_death_and_rejoin() {
        let t = |ms| SimTime::from_millis(ms);
        let mut lt = LivenessTracker::new(2, SimDuration::from_millis(100));
        lt.observe(EndSystemId(0), t(50));
        lt.observe(EndSystemId(1), t(50));
        assert!(lt.sweep(t(100)).is_empty());
        lt.observe(EndSystemId(0), t(150));
        // Client 1 has been silent for 101 ms -> dead.
        let dead = lt.sweep(t(151));
        assert_eq!(dead, vec![EndSystemId(1)]);
        assert!(!lt.is_alive(EndSystemId(1)));
        assert_eq!(lt.alive_count(), 1);
        assert_eq!(lt.dead_detections(), 1);
        // Heard from again -> rejoin.
        assert!(lt.observe(EndSystemId(1), t(200)));
        assert!(lt.is_alive(EndSystemId(1)));
        assert_eq!(lt.rejoins(), 1);
        // A normal observe is not a rejoin.
        assert!(!lt.observe(EndSystemId(0), t(200)));
    }

    #[test]
    fn retired_clients_are_never_declared_dead() {
        let t = |ms| SimTime::from_millis(ms);
        let mut lt = LivenessTracker::new(1, SimDuration::from_millis(10));
        lt.retire(EndSystemId(0));
        assert!(lt.sweep(t(10_000)).is_empty());
        assert!(lt.is_alive(EndSystemId(0)));
    }
}
