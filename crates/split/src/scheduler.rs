//! The server-side arrival queue and its scheduling policies.
//!
//! §II of the paper: "The centralized server requires queue while gathering
//! the results of the first hidden layers in end-systems … If an
//! end-system is located very far from the centralized server, the
//! parameters can arrive lately or sparsely. Then, the learning
//! performance can be biased … Thus, parameter scheduling is required
//! depending on applications, i.e., a queue data structure needs to be
//! defined." The paper leaves the policy open; we implement three and
//! measure them (experiment E4 in DESIGN.md).

use crate::protocol::ActivationMsg;
use std::collections::VecDeque;
use stsl_simnet::{SimDuration, SimTime};
use stsl_telemetry::{MetricId, TelemetryHub};

/// How the server picks the next queued activation batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulingPolicy {
    /// Serve strictly in arrival order. Fast/near clients dominate under
    /// latency heterogeneity.
    Fifo,
    /// Serve the pending batch of the *least-served* end-system first
    /// (ties to the earliest arrival). Equalizes contributions.
    RoundRobin,
    /// FIFO, but discard batches that waited longer than `max_age` —
    /// bounding staleness at the cost of dropped work.
    StalenessDrop {
        /// Maximum queueing age before a batch is discarded.
        max_age: SimDuration,
    },
}

impl std::fmt::Display for SchedulingPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedulingPolicy::Fifo => write!(f, "fifo"),
            SchedulingPolicy::RoundRobin => write!(f, "round-robin"),
            SchedulingPolicy::StalenessDrop { max_age } => {
                write!(f, "staleness-drop({})", max_age)
            }
        }
    }
}

/// Anything the arrival queue can hold: the queue only needs to know
/// which end-system sent a job (for round-robin fairness accounting and
/// telemetry actor keys), so the fleet path can enqueue slim
/// tensor-free job records while the trainers keep using full
/// [`ActivationMsg`]s.
pub trait ArrivalJob {
    /// The end-system that sent this job.
    fn sender(&self) -> stsl_simnet::EndSystemId;
}

impl ArrivalJob for ActivationMsg {
    fn sender(&self) -> stsl_simnet::EndSystemId {
        self.from
    }
}

/// One queued job with its arrival metadata.
#[derive(Debug, Clone)]
pub struct QueuedJob<J = ActivationMsg> {
    /// When the job reached the server.
    pub arrived_at: SimTime,
    /// The queued payload.
    pub msg: J,
}

/// Upper bound on retained depth samples. Below it the series is the
/// complete per-arrival record (the churn bench relies on that); past it
/// the series decimates deterministically — keep every other retained
/// sample, double the keep-stride — so 100k-client fleets don't grow a
/// row per arrival. Aggregates (`mean_depth`, `max_depth`, `mean_wait`)
/// stay exact regardless: they use running integer accumulators.
const DEPTH_SAMPLE_CAP: usize = 65_536;

/// The server's arrival queue, generic over the queued payload
/// (defaulting to the full activation message the trainers enqueue).
#[derive(Debug)]
pub struct ArrivalQueue<J: ArrivalJob = ActivationMsg> {
    policy: SchedulingPolicy,
    pending: VecDeque<QueuedJob<J>>,
    served_per_client: Vec<u64>,
    dropped: u64,
    /// Bounded-ingress capacity; `None` means unbounded (the legacy
    /// behavior).
    capacity: Option<usize>,
    /// Batches shed by the bounded-ingress policy.
    shed: u64,
    depth_samples: Vec<usize>,
    /// Keep one depth sample per `depth_stride` arrivals.
    depth_stride: u64,
    /// Total arrivals (depth observations) ever recorded.
    depth_total: u64,
    /// Exact running sum of post-insert depths.
    depth_sum: u128,
    /// Exact running maximum of post-insert depths.
    depth_max: usize,
    /// Exact running sum of served-batch queueing delays, µs.
    wait_sum_us: u128,
    /// Number of served batches contributing to `wait_sum_us`.
    wait_count: u64,
}

impl<J: ArrivalJob> ArrivalQueue<J> {
    /// Creates a queue for `end_systems` clients under `policy`.
    pub fn new(policy: SchedulingPolicy, end_systems: usize) -> Self {
        ArrivalQueue {
            policy,
            pending: VecDeque::new(),
            served_per_client: vec![0; end_systems],
            dropped: 0,
            capacity: None,
            shed: 0,
            depth_samples: Vec::new(),
            depth_stride: 1,
            depth_total: 0,
            depth_sum: 0,
            depth_max: 0,
            wait_sum_us: 0,
            wait_count: 0,
        }
    }

    /// Bounds the queue at `capacity` pending batches (clamped to ≥ 1);
    /// [`ArrivalQueue::push_shed`] sheds the oldest pending batches to
    /// stay under the bound.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = Some(capacity.max(1));
        self
    }

    /// The configured ingress bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Batches shed by the bounded-ingress policy so far.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// The active policy.
    pub fn policy(&self) -> SchedulingPolicy {
        self.policy
    }

    /// Number of batches waiting.
    pub fn depth(&self) -> usize {
        self.pending.len()
    }

    /// Whether nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Batches discarded by the staleness policy so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records one post-insert depth observation: exact running
    /// aggregates plus the bounded, stride-decimated raw series.
    fn record_depth(&mut self) {
        let d = self.pending.len();
        if self.depth_total.is_multiple_of(self.depth_stride.max(1)) {
            self.depth_samples.push(d);
            if self.depth_samples.len() >= DEPTH_SAMPLE_CAP {
                let mut keep_odd = false;
                self.depth_samples.retain(|_| {
                    keep_odd = !keep_odd;
                    keep_odd
                });
                self.depth_stride = self.depth_stride.max(1) * 2;
            }
        }
        self.depth_total += 1;
        self.depth_sum += d as u128;
        self.depth_max = self.depth_max.max(d);
    }

    /// Enqueues an arrival, sampling the queue depth *after* insertion.
    pub fn push(&mut self, arrived_at: SimTime, msg: J) {
        self.pending.push_back(QueuedJob { arrived_at, msg });
        self.record_depth();
    }

    /// [`ArrivalQueue::push`] that also records the post-insert queue
    /// depth as [`MetricId::QueueDepth`] for the arriving end-system.
    pub fn push_observed(
        &mut self,
        arrived_at: SimTime,
        msg: J,
        telemetry: Option<&mut TelemetryHub>,
    ) {
        let actor = msg.sender().0 as u64;
        self.push(arrived_at, msg);
        if let Some(hub) = telemetry {
            hub.record(MetricId::QueueDepth, actor, self.pending.len() as u64);
        }
    }

    /// Enqueues under the bounded-ingress policy: when the queue is at
    /// capacity, the oldest pending batches (oldest-staleness-first — the
    /// queue front, since arrivals enqueue in time order) are shed to make
    /// room, so the post-insert depth never exceeds the bound. The shed
    /// victims are returned so the trainer can notify their senders.
    /// Without a configured capacity this is exactly [`ArrivalQueue::push`].
    pub fn push_shed(&mut self, arrived_at: SimTime, msg: J) -> Vec<J> {
        let mut victims = Vec::new();
        if let Some(cap) = self.capacity {
            while self.pending.len() >= cap {
                let job = self.pending.pop_front().expect("queue is at capacity");
                self.shed += 1;
                victims.push(job.msg);
            }
        }
        self.push(arrived_at, msg);
        victims
    }

    /// [`ArrivalQueue::push_shed`] that also records the post-insert queue
    /// depth as [`MetricId::QueueDepth`] for the arriving end-system.
    pub fn push_shed_observed(
        &mut self,
        arrived_at: SimTime,
        msg: J,
        telemetry: Option<&mut TelemetryHub>,
    ) -> Vec<J> {
        let actor = msg.sender().0 as u64;
        let victims = self.push_shed(arrived_at, msg);
        if let Some(hub) = telemetry {
            hub.record(MetricId::QueueDepth, actor, self.pending.len() as u64);
        }
        victims
    }

    /// Pops the next batch to serve at time `now` according to the policy.
    ///
    /// For [`SchedulingPolicy::StalenessDrop`], expired batches are
    /// discarded (and counted) before selection; their originating clients
    /// are reported in the second tuple element so the trainer can notify
    /// them.
    pub fn pop(&mut self, now: SimTime) -> (Option<QueuedJob<J>>, Vec<J>) {
        let mut discarded = Vec::new();
        if let SchedulingPolicy::StalenessDrop { max_age } = self.policy {
            while let Some(front) = self.pending.front() {
                if now.since(front.arrived_at) > max_age {
                    let job = self.pending.pop_front().expect("front exists");
                    self.dropped += 1;
                    discarded.push(job.msg);
                } else {
                    break;
                }
            }
        }
        let chosen = match self.policy {
            SchedulingPolicy::Fifo | SchedulingPolicy::StalenessDrop { .. } => {
                self.pending.pop_front()
            }
            SchedulingPolicy::RoundRobin => {
                let best = self
                    .pending
                    .iter()
                    .enumerate()
                    .min_by_key(|(pos, job)| (self.served_per_client[job.msg.sender().0], *pos))
                    .map(|(pos, _)| pos);
                best.and_then(|pos| self.pending.remove(pos))
            }
        };
        if let Some(job) = &chosen {
            self.served_per_client[job.msg.sender().0] += 1;
            self.wait_sum_us += now.since(job.arrived_at).as_micros() as u128;
            self.wait_count += 1;
        }
        (chosen, discarded)
    }

    /// [`ArrivalQueue::pop`] that also records the chosen batch's age at
    /// apply time as [`MetricId::GradientStaleness`] — the queueing delay
    /// between arrival and the server actually consuming the update.
    pub fn pop_observed(
        &mut self,
        now: SimTime,
        telemetry: Option<&mut TelemetryHub>,
    ) -> (Option<QueuedJob<J>>, Vec<J>) {
        let (chosen, discarded) = self.pop(now);
        if let (Some(hub), Some(job)) = (telemetry, &chosen) {
            hub.record(
                MetricId::GradientStaleness,
                job.msg.sender().0 as u64,
                now.since(job.arrived_at).as_micros(),
            );
        }
        (chosen, discarded)
    }

    /// Mean queue depth observed at arrival instants (exact over every
    /// arrival, independent of sample decimation).
    pub fn mean_depth(&self) -> f64 {
        if self.depth_total == 0 {
            return 0.0;
        }
        self.depth_sum as f64 / self.depth_total as f64
    }

    /// Maximum observed queue depth (exact).
    pub fn max_depth(&self) -> usize {
        self.depth_max
    }

    /// Post-insert depth samples, in arrival order — the raw series the
    /// churn benchmark plots to show unbounded queue growth with
    /// shedding off. Complete up to a fixed cap, then a deterministic
    /// systematic subsample (every 2^k-th arrival).
    pub fn depth_samples(&self) -> &[usize] {
        &self.depth_samples
    }

    /// Mean queueing delay of served batches (exact running average).
    pub fn mean_wait(&self) -> SimDuration {
        if self.wait_count == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_micros((self.wait_sum_us / self.wait_count as u128) as u64)
    }

    /// Served-batch counts per end-system.
    pub fn served_per_client(&self) -> &[u64] {
        &self.served_per_client
    }

    /// Coefficient of variation of per-client service counts: 0 means
    /// perfectly fair, higher means the schedule is biased towards some
    /// clients — the "biased learning" failure mode §II warns about.
    pub fn service_imbalance(&self) -> f64 {
        let n = self.served_per_client.len() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let mean = stsl_tensor::sum_f64(self.served_per_client.iter().map(|&c| c as f64)) / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = stsl_tensor::sum_f64(
            self.served_per_client
                .iter()
                .map(|&c| (c as f64 - mean).powi(2)),
        ) / n;
        var.sqrt() / mean
    }
}

/// Micro-tokens per token: the bucket does all arithmetic in integer
/// micro-tokens so refill is exact and deterministic (1 token/s refills
/// exactly 1 micro-token per simulated microsecond).
const MICRO_TOKENS: u64 = 1_000_000;

/// Deterministic per-client token bucket for admission control.
///
/// Refill is lazy: each [`TokenBucket::try_take`] first credits
/// `elapsed_us × rate_per_sec` micro-tokens (saturating, capped at the
/// burst size), then spends one token if available. Pure integer state —
/// no floats, no clocks — so admission decisions are bit-reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenBucket {
    tokens_micro: u64,
    rate_per_sec: u64,
    burst: u64,
    last_refill: SimTime,
}

impl TokenBucket {
    /// A bucket refilling at `rate_per_sec` tokens per simulated second
    /// with a burst size of `burst` tokens (clamped to ≥ 1). Starts full.
    pub fn new(rate_per_sec: u64, burst: u64) -> Self {
        let burst = burst.max(1);
        TokenBucket {
            tokens_micro: burst.saturating_mul(MICRO_TOKENS),
            rate_per_sec,
            burst,
            last_refill: SimTime::ZERO,
        }
    }

    fn refill(&mut self, now: SimTime) {
        if now <= self.last_refill {
            return;
        }
        let elapsed = now.since(self.last_refill).as_micros();
        let add = elapsed.saturating_mul(self.rate_per_sec);
        self.tokens_micro = self
            .tokens_micro
            .saturating_add(add)
            .min(self.burst.saturating_mul(MICRO_TOKENS));
        self.last_refill = now;
    }

    /// Spends one token at `now` if the (just-refilled) bucket holds one.
    pub fn try_take(&mut self, now: SimTime) -> bool {
        self.refill(now);
        if self.tokens_micro >= MICRO_TOKENS {
            self.tokens_micro -= MICRO_TOKENS;
            true
        } else {
            false
        }
    }

    /// Whole tokens currently held (after the last refill).
    pub fn tokens(&self) -> u64 {
        self.tokens_micro / MICRO_TOKENS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::BatchId;
    use stsl_simnet::EndSystemId;
    use stsl_tensor::Tensor;

    fn msg(from: usize, batch: u32) -> ActivationMsg {
        ActivationMsg {
            from: EndSystemId(from),
            batch_id: BatchId { epoch: 0, batch },
            activations: Tensor::zeros([1, 1, 1, 1]),
            targets: vec![0],
        }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn fifo_serves_in_arrival_order() {
        let mut q = ArrivalQueue::new(SchedulingPolicy::Fifo, 2);
        q.push(t(1), msg(0, 0));
        q.push(t(2), msg(1, 0));
        q.push(t(3), msg(0, 1));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop(t(10)).0)
            .map(|j| j.msg.batch_id.batch * 10 + j.msg.from.0 as u32)
            .collect();
        assert_eq!(order, vec![0, 1, 10]);
    }

    #[test]
    fn round_robin_prefers_underserved_client() {
        let mut q = ArrivalQueue::new(SchedulingPolicy::RoundRobin, 2);
        // Client 0 floods the queue; client 1 has one batch.
        q.push(t(1), msg(0, 0));
        q.push(t(2), msg(0, 1));
        q.push(t(3), msg(0, 2));
        q.push(t(4), msg(1, 0));
        let first = q.pop(t(5)).0.unwrap();
        assert_eq!(first.msg.from, EndSystemId(0));
        // Now client 0 has been served once, so client 1 goes next even
        // though its batch arrived last.
        let second = q.pop(t(6)).0.unwrap();
        assert_eq!(second.msg.from, EndSystemId(1));
    }

    #[test]
    fn round_robin_equalizes_service_counts() {
        let mut q = ArrivalQueue::new(SchedulingPolicy::RoundRobin, 3);
        for b in 0..4 {
            q.push(t(b), msg(0, b as u32)); // near client floods
        }
        q.push(t(10), msg(1, 0));
        q.push(t(11), msg(2, 0));
        for _ in 0..6 {
            q.pop(t(20));
        }
        assert_eq!(q.served_per_client(), &[4, 1, 1]);
    }

    #[test]
    fn staleness_drop_discards_old_batches() {
        let policy = SchedulingPolicy::StalenessDrop {
            max_age: SimDuration::from_millis(10),
        };
        let mut q = ArrivalQueue::new(policy, 2);
        q.push(t(0), msg(0, 0)); // will be 50 ms old
        q.push(t(45), msg(1, 0)); // 5 ms old
        let (job, discarded) = q.pop(t(50));
        assert_eq!(discarded.len(), 1);
        assert_eq!(discarded[0].from, EndSystemId(0));
        assert_eq!(job.unwrap().msg.from, EndSystemId(1));
        assert_eq!(q.dropped(), 1);
    }

    #[test]
    fn statistics_track_depth_and_wait() {
        let mut q = ArrivalQueue::new(SchedulingPolicy::Fifo, 1);
        q.push(t(0), msg(0, 0));
        q.push(t(0), msg(0, 1));
        assert_eq!(q.max_depth(), 2);
        assert!((q.mean_depth() - 1.5).abs() < 1e-9);
        q.pop(t(4));
        assert_eq!(q.mean_wait().as_millis(), 4);
    }

    #[test]
    fn service_imbalance_zero_when_fair() {
        let mut q = ArrivalQueue::new(SchedulingPolicy::Fifo, 2);
        q.push(t(0), msg(0, 0));
        q.push(t(1), msg(1, 0));
        q.pop(t(2));
        q.pop(t(2));
        assert_eq!(q.service_imbalance(), 0.0);
    }

    #[test]
    fn service_imbalance_positive_when_skewed() {
        let mut q = ArrivalQueue::new(SchedulingPolicy::Fifo, 2);
        for b in 0..4 {
            q.push(t(b), msg(0, b as u32));
        }
        for _ in 0..4 {
            q.pop(t(10));
        }
        assert!(q.service_imbalance() > 0.9);
    }

    #[test]
    fn observed_push_and_pop_feed_telemetry() {
        let mut hub = TelemetryHub::new(8);
        let mut q = ArrivalQueue::new(SchedulingPolicy::Fifo, 2);
        q.push_observed(t(0), msg(0, 0), Some(&mut hub));
        q.push_observed(t(1), msg(1, 0), Some(&mut hub));
        let (job, _) = q.pop_observed(t(5), Some(&mut hub));
        assert_eq!(job.unwrap().msg.from, EndSystemId(0));
        let depth = hub.registry().histogram(MetricId::QueueDepth, 1).unwrap();
        assert_eq!(depth.max(), Some(2));
        let stale = hub
            .registry()
            .histogram(MetricId::GradientStaleness, 0)
            .unwrap();
        assert_eq!(stale.max(), Some(5_000));
        // Passing no hub behaves exactly like the plain methods.
        let (job, _) = q.pop_observed(t(6), None);
        assert_eq!(job.unwrap().msg.from, EndSystemId(1));
    }

    #[test]
    fn bounded_queue_sheds_oldest_first_and_never_exceeds_capacity() {
        let mut q = ArrivalQueue::new(SchedulingPolicy::Fifo, 3).with_capacity(2);
        assert_eq!(q.capacity(), Some(2));
        assert!(q.push_shed(t(0), msg(0, 0)).is_empty());
        assert!(q.push_shed(t(1), msg(1, 0)).is_empty());
        // Full: the third arrival sheds the oldest (client 0's batch).
        let victims = q.push_shed(t(2), msg(2, 0));
        assert_eq!(victims.len(), 1);
        assert_eq!(victims[0].from, EndSystemId(0));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.shed(), 1);
        assert_eq!(q.max_depth(), 2, "depth never exceeded the bound");
        // Survivors are served in order, unshed.
        assert_eq!(q.pop(t(3)).0.unwrap().msg.from, EndSystemId(1));
        assert_eq!(q.pop(t(3)).0.unwrap().msg.from, EndSystemId(2));
    }

    #[test]
    fn unbounded_push_shed_matches_plain_push() {
        let mut q = ArrivalQueue::new(SchedulingPolicy::Fifo, 1);
        for b in 0..50 {
            assert!(q.push_shed(t(b), msg(0, b as u32)).is_empty());
        }
        assert_eq!(q.depth(), 50);
        assert_eq!(q.shed(), 0);
        assert_eq!(q.depth_samples().len(), 50);
        assert_eq!(q.depth_samples().last(), Some(&50));
    }

    #[test]
    fn shed_observed_records_bounded_depth() {
        let mut hub = TelemetryHub::new(8);
        let mut q = ArrivalQueue::new(SchedulingPolicy::Fifo, 2).with_capacity(1);
        q.push_shed_observed(t(0), msg(0, 0), Some(&mut hub));
        let victims = q.push_shed_observed(t(1), msg(1, 0), Some(&mut hub));
        assert_eq!(victims.len(), 1);
        let depth = hub.registry().histogram(MetricId::QueueDepth, 1).unwrap();
        assert_eq!(depth.max(), Some(1), "observed depth respects the bound");
    }

    #[test]
    fn token_bucket_rates_and_bursts_are_exact() {
        let mut b = TokenBucket::new(2, 3); // 2 tokens/s, burst 3.
                                            // Starts full: the burst drains immediately.
        assert!(b.try_take(t(0)));
        assert!(b.try_take(t(0)));
        assert!(b.try_take(t(0)));
        assert!(!b.try_take(t(0)));
        assert_eq!(b.tokens(), 0);
        // 2 tokens/s -> one token every 500 ms.
        assert!(!b.try_take(t(499)));
        assert!(b.try_take(t(500)));
        assert!(!b.try_take(t(500)));
        // Idle long enough to refill past the burst: caps at 3.
        assert!(b.try_take(t(10_000)));
        assert!(b.try_take(t(10_000)));
        assert!(b.try_take(t(10_000)));
        assert!(!b.try_take(t(10_000)));
        // Deterministic: same calls, same outcomes.
        let run = || {
            let mut b = TokenBucket::new(7, 2);
            (0..40).map(|i| b.try_take(t(i * 37))).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_pop_returns_none() {
        let mut q: ArrivalQueue = ArrivalQueue::new(SchedulingPolicy::RoundRobin, 1);
        let (job, discarded) = q.pop(t(0));
        assert!(job.is_none());
        assert!(discarded.is_empty());
    }

    mod fairness_properties {
        use super::*;
        use proptest::prelude::*;

        const CLIENTS: usize = 4;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Round-robin fairness invariant: at every pop, the chosen
            /// end-system's already-served count is minimal among the
            /// end-systems that still have work queued. This is the local
            /// guarantee that prevents the "biased learning" failure mode —
            /// no client with pending batches can be skipped in favor of a
            /// better-served one, under *any* arrival order.
            #[test]
            fn round_robin_always_serves_a_least_served_pending_client(
                arrivals in prop::collection::vec(0usize..CLIENTS, 1..60),
            ) {
                let mut q = ArrivalQueue::new(SchedulingPolicy::RoundRobin, CLIENTS);
                let mut queued = [0u64; CLIENTS];
                for (i, &from) in arrivals.iter().enumerate() {
                    q.push(t(i as u64), msg(from, i as u32));
                    queued[from] += 1;
                }
                let mut served = vec![0u64; CLIENTS];
                loop {
                    let (job, discarded) = q.pop(t(1_000));
                    prop_assert!(discarded.is_empty());
                    let Some(job) = job else { break };
                    let who = job.msg.from.0;
                    let min_pending = (0..CLIENTS)
                        .filter(|&c| queued[c] > 0)
                        .map(|c| served[c])
                        .min()
                        .expect("a job was popped, so some client had work");
                    prop_assert_eq!(served[who], min_pending);
                    prop_assert!(queued[who] > 0);
                    served[who] += 1;
                    queued[who] -= 1;
                }
                prop_assert_eq!(&served, q.served_per_client());
            }

            /// Global staleness bound: while every end-system stays
            /// backlogged, no end-system's applied-update count may lag the
            /// maximum by more than one round — the round-robin staleness
            /// bound. The arrival interleaving is randomized; each client's
            /// backlog is topped up to the same size so the bound is
            /// exercised over a full drain.
            #[test]
            fn round_robin_lag_bounded_by_one_under_full_backlog(
                order in prop::collection::vec(0usize..CLIENTS, 8..60),
            ) {
                let mut counts = [0u64; CLIENTS];
                for &c in &order {
                    counts[c] += 1;
                }
                let per_client = counts.iter().copied().min().unwrap_or(0).max(1);

                let mut q = ArrivalQueue::new(SchedulingPolicy::RoundRobin, CLIENTS);
                let mut pushed = [0u64; CLIENTS];
                let mut clock = 0u64;
                // Random interleaving, capped at `per_client` per end-system.
                for &c in &order {
                    if pushed[c] < per_client {
                        q.push(t(clock), msg(c, clock as u32));
                        pushed[c] += 1;
                        clock += 1;
                    }
                }
                // Top up stragglers so every client holds exactly
                // `per_client` jobs (arriving last: the worst case for them).
                for (c, p) in pushed.iter_mut().enumerate() {
                    while *p < per_client {
                        q.push(t(clock), msg(c, clock as u32));
                        *p += 1;
                        clock += 1;
                    }
                }

                let mut served = vec![0u64; CLIENTS];
                for _ in 0..per_client * CLIENTS as u64 {
                    let job = q.pop(t(1_000)).0.expect("queue drains exactly");
                    served[job.msg.from.0] += 1;
                    let max = *served.iter().max().unwrap();
                    let min = *served.iter().min().unwrap();
                    prop_assert!(
                        max - min <= 1,
                        "service lag {} exceeds the round-robin staleness bound of 1 \
                         (served: {:?})",
                        max - min,
                        served
                    );
                }
                prop_assert!(q.is_empty());
                prop_assert!(served.iter().all(|&s| s == per_client));
                prop_assert_eq!(q.service_imbalance(), 0.0);
            }

            /// Staleness-drop policy invariant: a served batch is never
            /// older than `max_age` at service time, and everything expired
            /// ahead of it is discarded and counted, regardless of arrival
            /// timing.
            #[test]
            fn staleness_drop_never_serves_expired_batches(
                mut gaps in prop::collection::vec(0u64..40, 1..30),
                max_age in 5u64..25,
            ) {
                let policy = SchedulingPolicy::StalenessDrop {
                    max_age: SimDuration::from_millis(max_age),
                };
                let mut q = ArrivalQueue::new(policy, 2);
                // Arrivals must be time-ordered, as in the simulator.
                let mut clock = 0u64;
                let total = gaps.len();
                for (i, gap) in gaps.drain(..).enumerate() {
                    clock += gap;
                    q.push(t(clock), msg(i % 2, i as u32));
                }
                let now = t(clock + max_age / 2);
                let mut served = 0usize;
                let mut discarded_total = 0usize;
                loop {
                    let (job, discarded) = q.pop(now);
                    discarded_total += discarded.len();
                    let Some(job) = job else { break };
                    prop_assert!(
                        now.since(job.arrived_at) <= SimDuration::from_millis(max_age),
                        "served a batch {} old, max_age {} ms",
                        now.since(job.arrived_at),
                        max_age
                    );
                    served += 1;
                }
                prop_assert_eq!(served + discarded_total, total);
                prop_assert_eq!(q.dropped(), discarded_total as u64);
            }
        }
    }
}
