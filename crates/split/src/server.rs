//! The centralized server: upper layers, loss, and the single shared model
//! trained on every end-system's smashed activations.

use crate::aggregate::{AggregationPolicy, RobustAggregator, RobustApply};
use crate::guard::{validate_update, Anomaly, GuardConfig};
use crate::protocol::{ActivationMsg, GradientMsg};
use stsl_data::ImageDataset;
use stsl_nn::loss::{Loss, SoftmaxCrossEntropy};
use stsl_nn::metrics::RunningMean;
use stsl_nn::optim::Optimizer;
use stsl_nn::{Mode, Sequential};
use stsl_telemetry::{MetricId, TelemetryHub};
use stsl_tensor::Tensor;

/// Result of the server processing one activation batch.
#[derive(Debug, Clone)]
pub struct ServerStepOutput {
    /// Gradient message to return to the originating end-system.
    pub gradient: GradientMsg,
    /// Mean loss on this batch.
    pub loss: f32,
    /// Training-batch accuracy (cheap progress signal).
    pub batch_accuracy: f32,
}

/// The centralized server of Fig. 2.
///
/// It owns layers `L_{k+1}..` plus the dense head and the loss, and is the
/// only place where data from *all* end-systems meets — which is exactly
/// why the paper's scheme achieves near-centralized accuracy.
#[derive(Debug)]
pub struct CentralServer {
    model: Sequential,
    loss: SoftmaxCrossEntropy,
    opt: Box<dyn Optimizer>,
    steps: u64,
    served_per_client: Vec<u64>,
    train_loss: RunningMean,
    robust: Option<RobustAggregator>,
    last_robust: Option<RobustApply>,
}

impl CentralServer {
    /// Creates a server over the upper `model` half.
    pub fn new(model: Sequential, opt: Box<dyn Optimizer>, end_systems: usize) -> Self {
        CentralServer {
            model,
            loss: SoftmaxCrossEntropy::new(),
            opt,
            steps: 0,
            served_per_client: vec![0; end_systems],
            train_loss: RunningMean::new(),
            robust: None,
            last_robust: None,
        }
    }

    /// Enables windowed robust aggregation: per-batch gradients are
    /// buffered and combined under `policy` every `window` batches, and
    /// only the combined gradient reaches the optimizer (batches between
    /// window boundaries step nothing). `outlier_factor` scales the
    /// statistical-outlier threshold (see
    /// [`crate::aggregate::outlier_flags`]), and `refine` enables the
    /// two-pass outlier-exclusion recombine
    /// ([`RobustAggregator::refine_outliers`] — the trainer sets it when
    /// the integrity guard is on). A zero `window` is clamped to 1 and a
    /// non-finite or non-positive `outlier_factor` keeps the default.
    pub fn enable_robust_aggregation(
        &mut self,
        policy: AggregationPolicy,
        window: usize,
        outlier_factor: f32,
        refine: bool,
    ) {
        self.robust = Some(
            RobustAggregator::new(policy, window)
                .outlier_factor(outlier_factor)
                .refine_outliers(refine),
        );
    }

    /// Whether robust aggregation is active.
    pub fn robust_enabled(&self) -> bool {
        self.robust.is_some()
    }

    /// Resizes the aggregation window (no-op when robust aggregation is
    /// off). The trainer calls this as senders enter and leave
    /// quarantine so the window tracks the active cohort — a window
    /// waiting on updates from exiled senders would slow the optimizer
    /// cadence for everyone else. A zero `window` is clamped to 1.
    pub fn set_robust_window(&mut self, window: usize) {
        if let Some(agg) = self.robust.as_mut() {
            agg.set_window(window);
        }
    }

    /// The current aggregation window size, if robust aggregation is on.
    pub fn robust_window(&self) -> Option<usize> {
        self.robust.as_ref().map(|agg| agg.window())
    }

    /// Takes the outcome of the most recent robust window apply, if one
    /// happened since the last call (the trainer polls this after each
    /// served batch to drive counters, telemetry and quarantine).
    pub fn take_robust_apply(&mut self) -> Option<RobustApply> {
        self.last_robust.take()
    }

    /// Discards any buffered not-yet-combined updates (called on
    /// watchdog rollback so stale gradients never cross the restore
    /// boundary).
    pub fn clear_robust_buffer(&mut self) {
        if let Some(agg) = self.robust.as_mut() {
            agg.clear();
        }
        self.last_robust = None;
    }

    fn flat_grads(&mut self) -> Vec<f32> {
        let mut flat = Vec::new();
        self.model
            .visit_params(&mut |p| flat.extend_from_slice(p.grad.as_slice()));
        flat
    }

    fn write_grads(&mut self, combined: &[f32]) {
        let mut offset = 0usize;
        self.model.visit_params(&mut |p| {
            let dst = p.grad.as_mut_slice();
            dst.copy_from_slice(&combined[offset..offset + dst.len()]);
            offset += dst.len();
        });
        debug_assert_eq!(offset, combined.len(), "combined gradient length drift");
    }

    /// Total batches processed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Batches processed per originating end-system — the contribution
    /// histogram the scheduling experiments analyze for bias.
    pub fn served_per_client(&self) -> &[u64] {
        &self.served_per_client
    }

    /// Running mean of training losses since construction.
    pub fn mean_train_loss(&self) -> Option<f32> {
        self.train_loss.mean()
    }

    /// Processes one activation batch: forward through the upper layers,
    /// loss, backward, optimizer step, and the cut-layer gradient to send
    /// back.
    ///
    /// With robust aggregation enabled
    /// ([`CentralServer::enable_robust_aggregation`]) the per-batch
    /// gradient is buffered instead of applied; the optimizer steps only
    /// when a full window is combined. The cut-layer gradient returned to
    /// the sender is unchanged either way.
    ///
    /// # Panics
    ///
    /// Panics if the message's client id is out of range or shapes are
    /// inconsistent with the model.
    pub fn process(&mut self, msg: &ActivationMsg) -> ServerStepOutput {
        assert!(
            msg.from.0 < self.served_per_client.len(),
            "unknown end-system {}",
            msg.from
        );
        self.model.zero_grads();
        let logits = self.model.forward(&msg.activations, Mode::Train);
        let out = self.loss.forward(&logits, &msg.targets);
        let cut_grad = self.model.backward(&out.grad);
        if let Some(mut agg) = self.robust.take() {
            let flat = self.flat_grads();
            if let Some(apply) = agg.push(msg.from.0, flat) {
                self.write_grads(&apply.combined);
                self.model.step(self.opt.as_mut());
                self.last_robust = Some(apply);
            }
            self.robust = Some(agg);
        } else {
            self.model.step(self.opt.as_mut());
        }
        self.steps += 1;
        self.served_per_client[msg.from.0] += 1;
        self.train_loss.push(out.value);
        let preds = logits.argmax_rows();
        let hits = preds
            .iter()
            .zip(&msg.targets)
            .filter(|(p, t)| p == t)
            .count();
        ServerStepOutput {
            gradient: GradientMsg {
                to: msg.from,
                batch_id: msg.batch_id,
                grad: cut_grad,
            },
            loss: out.value,
            batch_accuracy: hits as f32 / msg.targets.len().max(1) as f32,
        }
    }

    /// Like [`CentralServer::process`], but with ingress validation: the
    /// incoming activations must be finite and within the guard's RMS
    /// bound *before* they touch the model or optimizer.
    ///
    /// # Errors
    ///
    /// Returns the [`Anomaly`] without mutating any server state — no
    /// optimizer step, no counters, no loss history.
    pub fn process_guarded(
        &mut self,
        msg: &ActivationMsg,
        guard: &GuardConfig,
    ) -> Result<ServerStepOutput, Anomaly> {
        validate_update(&msg.activations, guard.max_activation_rms)?;
        Ok(self.process(msg))
    }

    /// Ingress path with optional guard and telemetry: validates when a
    /// guard is given, then processes and records the batch's service
    /// time as [`MetricId::ServiceTime`] for the originating end-system.
    ///
    /// # Errors
    ///
    /// As [`CentralServer::process_guarded`]: rejected updates mutate no
    /// server state and record no service time.
    pub fn process_observed(
        &mut self,
        msg: &ActivationMsg,
        guard: Option<&GuardConfig>,
        telemetry: Option<&mut TelemetryHub>,
        service_us: u64,
    ) -> Result<ServerStepOutput, Anomaly> {
        if let Some(g) = guard {
            validate_update(&msg.activations, g.max_activation_rms)?;
        }
        let out = self.process(msg);
        if let Some(hub) = telemetry {
            hub.record(MetricId::ServiceTime, msg.from.0 as u64, service_us);
        }
        Ok(out)
    }

    /// Current learning rate of the server optimizer.
    pub fn learning_rate(&self) -> f32 {
        self.opt.learning_rate()
    }

    /// Scales the server optimizer's learning rate (the watchdog's
    /// post-rollback cooldown).
    pub fn scale_learning_rate(&mut self, factor: f32) {
        let lr = self.opt.learning_rate();
        self.opt.set_learning_rate(lr * factor);
    }

    /// Inference through the upper layers only (activations already
    /// encoded by some end-system).
    pub fn infer(&mut self, activations: &Tensor) -> Tensor {
        self.model.forward(activations, Mode::Eval)
    }

    /// Evaluates accuracy on `test` using `encode` to run an end-system's
    /// private encoder, in batches of `batch_size`.
    pub fn evaluate_with_encoder(
        &mut self,
        test: &ImageDataset,
        batch_size: usize,
        mut encode: impl FnMut(&Tensor) -> Tensor,
    ) -> f32 {
        let mut hits = 0usize;
        let mut total = 0usize;
        let mut start = 0;
        while start < test.len() {
            let end = (start + batch_size).min(test.len());
            let indices: Vec<usize> = (start..end).collect();
            let (images, targets) = test.batch(&indices);
            let encoded = encode(&images);
            let logits = self.infer(&encoded);
            let preds = logits.argmax_rows();
            hits += preds.iter().zip(&targets).filter(|(p, t)| p == t).count();
            total += targets.len();
            start = end;
        }
        hits as f32 / total.max(1) as f32
    }

    /// The upper model (for checkpointing in experiments).
    pub fn model_mut(&mut self) -> &mut Sequential {
        &mut self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CnnArch, CutPoint};
    use crate::protocol::BatchId;
    use stsl_data::SyntheticCifar;
    use stsl_nn::optim::Sgd;
    use stsl_simnet::EndSystemId;
    use stsl_tensor::init::rng_from_seed;

    fn make_server(cut: usize) -> (CentralServer, CnnArch) {
        let arch = CnnArch::tiny();
        let (_, upper) = arch.build_split(CutPoint(cut), 11);
        (CentralServer::new(upper, Box::new(Sgd::new(0.05)), 2), arch)
    }

    fn activation_msg(arch: &CnnArch, cut: usize, n: usize, from: usize) -> ActivationMsg {
        let dims = arch.cut_dims(CutPoint(cut), n);
        ActivationMsg {
            from: EndSystemId(from),
            batch_id: BatchId { epoch: 0, batch: 0 },
            activations: Tensor::randn(dims, &mut rng_from_seed(3)),
            targets: (0..n).map(|i| i % arch.classes).collect(),
        }
    }

    #[test]
    fn process_returns_matching_gradient() {
        let (mut server, arch) = make_server(1);
        let msg = activation_msg(&arch, 1, 4, 0);
        let out = server.process(&msg);
        assert_eq!(out.gradient.grad.dims(), msg.activations.dims());
        assert_eq!(out.gradient.to, msg.from);
        assert_eq!(out.gradient.batch_id, msg.batch_id);
        assert!(out.loss > 0.0);
        assert!(server.mean_train_loss().is_some());
    }

    #[test]
    fn process_counts_per_client() {
        let (mut server, arch) = make_server(1);
        server.process(&activation_msg(&arch, 1, 2, 0));
        server.process(&activation_msg(&arch, 1, 2, 1));
        server.process(&activation_msg(&arch, 1, 2, 1));
        assert_eq!(server.served_per_client(), &[1, 2]);
        assert_eq!(server.steps(), 3);
    }

    #[test]
    #[should_panic(expected = "unknown end-system")]
    fn process_rejects_unknown_client() {
        let (mut server, arch) = make_server(1);
        server.process(&activation_msg(&arch, 1, 2, 5));
    }

    #[test]
    fn repeated_steps_reduce_loss_on_fixed_batch() {
        let (mut server, arch) = make_server(0);
        let data = SyntheticCifar::new(1).generate_sized(16, arch.image_side);
        let (images, targets) = data.batch(&(0..16).collect::<Vec<_>>());
        let msg = ActivationMsg {
            from: EndSystemId(0),
            batch_id: BatchId { epoch: 0, batch: 0 },
            activations: images,
            targets,
        };
        let first = server.process(&msg).loss;
        let mut last = first;
        for _ in 0..25 {
            last = server.process(&msg).loss;
        }
        assert!(last < first * 0.8, "loss {} -> {}", first, last);
    }

    #[test]
    fn guarded_process_rejects_poison_without_state_change() {
        let (mut server, arch) = make_server(1);
        let guard = GuardConfig::default();
        let mut msg = activation_msg(&arch, 1, 4, 0);
        let weights_before = server.model_mut().state_dict();

        // NaN poison: rejected, nothing moves.
        msg.activations.as_mut_slice()[3] = f32::NAN;
        assert!(matches!(
            server.process_guarded(&msg, &guard),
            Err(crate::guard::Anomaly::NonFinite)
        ));
        assert_eq!(server.steps(), 0);
        assert_eq!(server.mean_train_loss(), None);
        assert_eq!(server.model_mut().state_dict(), weights_before);

        // Norm explosion: rejected.
        let mut huge = activation_msg(&arch, 1, 4, 0);
        huge.activations.map_inplace(|_| 1e6);
        assert!(matches!(
            server.process_guarded(&huge, &guard),
            Err(crate::guard::Anomaly::NormExplosion { .. })
        ));
        assert_eq!(server.steps(), 0);

        // A healthy batch flows through identically to process().
        let clean = activation_msg(&arch, 1, 4, 0);
        let out = server.process_guarded(&clean, &guard).unwrap();
        assert_eq!(out.gradient.grad.dims(), clean.activations.dims());
        assert_eq!(server.steps(), 1);
    }

    #[test]
    fn observed_process_records_service_time_only_on_success() {
        let (mut server, arch) = make_server(1);
        let guard = GuardConfig::default();
        let mut hub = TelemetryHub::new(8);

        let mut poison = activation_msg(&arch, 1, 4, 0);
        poison.activations.as_mut_slice()[0] = f32::NAN;
        assert!(server
            .process_observed(&poison, Some(&guard), Some(&mut hub), 1_000)
            .is_err());
        assert!(hub.registry().histogram(MetricId::ServiceTime, 0).is_none());

        let clean = activation_msg(&arch, 1, 4, 0);
        let out = server
            .process_observed(&clean, Some(&guard), Some(&mut hub), 1_000)
            .unwrap();
        assert_eq!(out.gradient.to, clean.from);
        let h = hub.registry().histogram(MetricId::ServiceTime, 0).unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), Some(1_000));
    }

    #[test]
    fn learning_rate_cooldown_scales() {
        let (mut server, _) = make_server(1);
        assert_eq!(server.learning_rate(), 0.05);
        server.scale_learning_rate(0.5);
        assert!((server.learning_rate() - 0.025).abs() < 1e-9);
    }

    #[test]
    fn evaluate_with_identity_encoder() {
        let (mut server, arch) = make_server(0);
        let test = SyntheticCifar::new(2).generate_sized(20, arch.image_side);
        let acc = server.evaluate_with_encoder(&test, 8, |x| x.clone());
        assert!((0.0..=1.0).contains(&acc));
    }
}
