//! The synchronous spatio-temporal split-learning trainer.
//!
//! This is the paper's Fig. 2 pipeline run in-process with no simulated
//! network: end-systems take turns (round-robin over batch indices)
//! sending smashed activations to the one centralized server, which trains
//! the shared upper model on *all* of them and returns cut-layer
//! gradients. It reproduces Table I.

use crate::checkpoint::CheckpointRing;
use crate::client::EndSystem;
use crate::config::SplitConfig;
use crate::guard::{tensor_rms, GuardConfig, HealthWatchdog};
use crate::protocol::{ActivationMsg, GradientMsg};
use crate::report::{CommReport, EpochStats, TrainReport};
use crate::server::CentralServer;
use stsl_data::{ImageDataset, Partition};
use stsl_nn::metrics::RunningMean;
use stsl_parallel::{par_map_mut, ChunkPolicy};
use stsl_simnet::EndSystemId;
use stsl_telemetry::{JournalKind, TelemetryHub};
use stsl_tensor::init::derive_seed;

/// Error constructing a trainer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Orchestrates multiple [`EndSystem`]s and one [`CentralServer`].
#[derive(Debug)]
pub struct SpatioTemporalTrainer {
    config: SplitConfig,
    server: CentralServer,
    clients: Vec<EndSystem>,
    comm: CommReport,
    guard: Option<GuardConfig>,
    watchdog: HealthWatchdog,
    ring: CheckpointRing,
    anomalies_rejected: u64,
    rollbacks: u64,
    telemetry: Option<TelemetryHub>,
}

impl SpatioTemporalTrainer {
    /// Builds the trainer: validates the configuration, partitions
    /// `train` across end-systems, builds each end-system's **private**
    /// lower model (unique seed per end-system — the paper's individual
    /// first hidden layers) and the server's shared upper model.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is inconsistent or the
    /// dataset is too small to shard.
    pub fn new(config: SplitConfig, train: &ImageDataset) -> Result<Self, ConfigError> {
        config.validate().map_err(ConfigError)?;
        if train.len() < config.end_systems {
            return Err(ConfigError(format!(
                "{} samples cannot be split across {} end-systems",
                train.len(),
                config.end_systems
            )));
        }
        let partition: Partition = config.partition.into();
        let shards = partition.split(train, config.end_systems, derive_seed(config.seed, 7));
        let (_, server_model) = config.arch.build_split(config.cut, config.seed);
        let server = CentralServer::new(server_model, config.build_optimizer(), config.end_systems);
        let clients = shards
            .into_iter()
            .enumerate()
            .map(|(i, shard)| {
                let client_seed = derive_seed(config.seed, 1000 + i as u64);
                let (client_model, _) = config.arch.build_split(config.cut, client_seed);
                EndSystem::new(
                    EndSystemId(i),
                    client_model,
                    shard,
                    config.batch_size,
                    config.build_optimizer(),
                    config.augment,
                    client_seed,
                )
                .with_smash_noise(config.smash_noise)
            })
            .collect();
        Ok(SpatioTemporalTrainer {
            config,
            server,
            clients,
            comm: CommReport::default(),
            guard: None,
            watchdog: HealthWatchdog::new(&GuardConfig::default()),
            ring: CheckpointRing::new(1),
            anomalies_rejected: 0,
            rollbacks: 0,
            telemetry: None,
        })
    }

    /// Enables the telemetry hub. The synchronous trainer has no simulated
    /// clock, so journal entries and snapshots are stamped with a logical
    /// time: the server's global step count. One snapshot is emitted per
    /// epoch.
    pub fn enable_telemetry(&mut self, journal_capacity: usize) {
        self.telemetry = Some(TelemetryHub::new(journal_capacity));
    }

    /// The telemetry hub, when [`enable_telemetry`](Self::enable_telemetry)
    /// was called.
    pub fn telemetry(&self) -> Option<&TelemetryHub> {
        self.telemetry.as_ref()
    }

    /// Journals `kind` at the current logical time (server step count).
    fn journal(&mut self, kind: JournalKind, actor: u64) {
        let at = self.server.steps();
        if let Some(hub) = &mut self.telemetry {
            hub.journal(at, kind, actor);
        }
    }

    /// Enables the data-plane integrity guard: incoming activations are
    /// validated before they touch the shared model, and a training-health
    /// watchdog rolls the deployment back to the last good checkpoint
    /// (with a learning-rate cooldown) when loss or gradients diverge.
    pub fn with_integrity_guard(mut self, guard: GuardConfig) -> Self {
        self.watchdog = HealthWatchdog::new(&guard);
        self.ring = CheckpointRing::new(guard.ring_capacity);
        self.guard = Some(guard);
        self
    }

    /// The configuration this trainer runs.
    pub fn config(&self) -> &SplitConfig {
        &self.config
    }

    /// The end-systems (for inspection and the privacy experiments).
    pub fn clients_mut(&mut self) -> &mut [EndSystem] {
        &mut self.clients
    }

    /// The centralized server.
    pub fn server_mut(&mut self) -> &mut CentralServer {
        &mut self.server
    }

    /// Runs one epoch: every *participating* end-system passes once over
    /// its shard, with batches interleaved round-robin at the server.
    /// With `config.participation < 1.0`, each end-system independently
    /// skips the epoch with probability `1 - participation` (at least one
    /// always participates). Returns `(mean loss, mean batch accuracy)`.
    pub fn run_epoch(&mut self, epoch: usize) -> (f32, f32) {
        let participating = self.sample_participants(epoch);
        for (i, c) in self.clients.iter_mut().enumerate() {
            if participating[i] {
                c.begin_epoch(epoch as u64);
            }
        }
        let mut loss = RunningMean::new();
        let mut acc = RunningMean::new();
        // Each round has three phases. Client compute depends only on a
        // client's own private state, so fanning phases 1 and 3 out across
        // threads produces exactly the batches and updates of the old
        // serial interleave; phase 2 keeps the server a single logical
        // queue processing uplinks in ascending end-system order, so the
        // server's step order, comm totals, and metric order are
        // unchanged for any `STSL_THREADS`.
        let fanout = ChunkPolicy::min_chunk(1);
        let mut remaining = true;
        while remaining {
            remaining = false;
            // Phase 1 (spatial fan-out): every participating end-system
            // computes its next smashed-activation batch concurrently.
            let msgs: Vec<Option<ActivationMsg>> =
                par_map_mut(&mut self.clients, fanout, |i, c| {
                    if participating[i] {
                        c.next_batch()
                    } else {
                        None
                    }
                });
            // Phase 2 (serial server queue): process arrivals in
            // end-system order, exactly as the serial loop did. With the
            // integrity guard on, poisoned activations are rejected before
            // they touch the shared model, and the health watchdog may
            // roll the deployment back mid-round; either way the sender's
            // batch is abandoned rather than answered.
            let guard = self.guard;
            let mut grads: Vec<Option<GradientMsg>> = Vec::new();
            let mut abandoned = vec![false; self.clients.len()];
            for (i, msg) in msgs.iter().enumerate() {
                let Some(msg) = msg else {
                    grads.push(None);
                    continue;
                };
                remaining = true;
                self.comm.uplink_bytes += msg.encoded_len() as u64;
                self.comm.uplink_messages += 1;
                self.journal(JournalKind::ServiceStart, i as u64);
                let out = if let Some(g) = guard {
                    match self.server.process_guarded(msg, &g) {
                        Ok(out) => out,
                        Err(_) => {
                            self.anomalies_rejected += 1;
                            self.journal(JournalKind::AnomalyRejected, i as u64);
                            abandoned[i] = true;
                            grads.push(None);
                            continue;
                        }
                    }
                } else {
                    self.server.process(msg)
                };
                if let Some(g) = guard {
                    if self
                        .watchdog
                        .observe(out.loss, tensor_rms(&out.gradient.grad))
                    {
                        self.rollback(&g);
                        abandoned[i] = true;
                        grads.push(None);
                        continue;
                    }
                }
                self.comm.downlink_bytes += out.gradient.encoded_len() as u64;
                self.comm.downlink_messages += 1;
                loss.push(out.loss);
                acc.push(out.batch_accuracy);
                grads.push(Some(out.gradient));
            }
            // Phase 3 (fan-in): each end-system applies its own cut-layer
            // gradient to its private lower model, concurrently.
            let results = par_map_mut(&mut self.clients, fanout, |i, c| {
                if abandoned[i] {
                    c.abandon_outstanding();
                    return None;
                }
                grads[i].as_ref().map(|g| c.apply_gradient(g))
            });
            for r in results.into_iter().flatten() {
                r.expect("sync protocol answers every batch in order");
            }
        }
        (loss.mean().unwrap_or(0.0), acc.mean().unwrap_or(0.0))
    }

    /// Samples which end-systems take part in `epoch`, deterministically
    /// from the run seed. Guarantees at least one participant.
    fn sample_participants(&self, epoch: usize) -> Vec<bool> {
        let p = self.config.participation;
        if p >= 1.0 {
            return vec![true; self.clients.len()];
        }
        use rand::Rng;
        let mut rng =
            stsl_tensor::init::rng_from_seed(derive_seed(self.config.seed, 0x9A47 ^ epoch as u64));
        let mut participating: Vec<bool> = (0..self.clients.len())
            .map(|_| rng.gen::<f32>() < p)
            .collect();
        if participating.iter().all(|&x| !x) {
            let lucky = rng.gen_range(0..self.clients.len());
            participating[lucky] = true;
        }
        participating
    }

    /// Rolls the deployment back to the newest checkpoint in the ring
    /// (or just cools the learning rate when the ring is empty) and
    /// resets the watchdog. Repeated divergences walk backward through
    /// progressively older ring entries.
    fn rollback(&mut self, guard: &GuardConfig) {
        self.rollbacks += 1;
        let server_actor = self.clients.len() as u64;
        self.journal(JournalKind::Rollback, server_actor);
        if let Some(ckpt) = self.ring.pop_latest() {
            self.restore(&ckpt)
                .expect("ring checkpoints come from this deployment");
        }
        self.server.scale_learning_rate(guard.lr_cooldown);
        self.watchdog.reset();
    }

    /// Activations the ingress guard has rejected so far.
    pub fn anomalies_rejected(&self) -> u64 {
        self.anomalies_rejected
    }

    /// Watchdog rollbacks so far.
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks
    }

    /// The ring of recent good checkpoints (populated only while the
    /// integrity guard is on).
    pub fn checkpoint_ring(&self) -> &CheckpointRing {
        &self.ring
    }

    /// Installs `ring` (e.g. loaded from disk after a crash) and restores
    /// the deployment from its newest entry, if any. Returns whether a
    /// checkpoint was applied.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the newest entry was taken on a
    /// deployment with a different end-system count.
    pub fn resume_from_ring(&mut self, ring: CheckpointRing) -> Result<bool, ConfigError> {
        let applied = if let Some(ckpt) = ring.latest() {
            self.restore(ckpt)?;
            true
        } else {
            false
        };
        self.ring = ring;
        Ok(applied)
    }

    /// Test accuracy per end-system encoder.
    pub fn evaluate_per_client(&mut self, test: &ImageDataset) -> Vec<f32> {
        let batch = self.config.batch_size.max(32);
        self.clients
            .iter_mut()
            .map(|c| {
                self.server
                    .evaluate_with_encoder(test, batch, |x| c.encode(x))
            })
            .collect()
    }

    /// Mean test accuracy over end-system encoders — the deployment-time
    /// number (each hospital serves predictions through its own encoder
    /// plus the shared server).
    pub fn evaluate(&mut self, test: &ImageDataset) -> f32 {
        let per = self.evaluate_per_client(test);
        stsl_tensor::mean_f32(&per)
    }

    /// Runs the full configured training, evaluating after every epoch.
    pub fn train(&mut self, test: &ImageDataset) -> TrainReport {
        let start = crate::WallTimer::start();
        if self.guard.is_some() {
            // Seed the rollback ring so the watchdog always has a target,
            // even if training diverges during the first epoch.
            let ckpt = self.checkpoint();
            self.ring.push(ckpt);
        }
        let mut epochs = Vec::with_capacity(self.config.epochs);
        for e in 0..self.config.epochs {
            let (anomalies_before, rollbacks_before) = (self.anomalies_rejected, self.rollbacks);
            let (train_loss, train_accuracy) = self.run_epoch(e);
            let test_accuracy = self.evaluate(test);
            epochs.push(EpochStats {
                epoch: e,
                train_loss,
                train_accuracy,
                test_accuracy,
                anomalies_rejected: self.anomalies_rejected - anomalies_before,
                rollbacks: self.rollbacks - rollbacks_before,
            });
            if self.guard.is_some() && train_loss.is_finite() {
                let ckpt = self.checkpoint();
                self.ring.push(ckpt);
            }
            let server_actor = self.clients.len() as u64;
            self.journal(JournalKind::SnapshotEmit, server_actor);
            let at = self.server.steps();
            if let Some(hub) = &mut self.telemetry {
                hub.emit_snapshot(at);
            }
        }
        let per_client_accuracy = self.evaluate_per_client(test);
        let final_accuracy = stsl_tensor::mean_f32(&per_client_accuracy);
        TrainReport {
            label: self.config.cut.label(),
            end_systems: self.config.end_systems,
            cut_blocks: self.config.cut.blocks(),
            epochs,
            final_accuracy,
            per_client_accuracy,
            comm: self.comm,
            wall_seconds: start.seconds(),
            anomalies_rejected: self.anomalies_rejected,
            rollbacks: self.rollbacks,
        }
    }

    /// Communication totals so far.
    pub fn comm(&self) -> CommReport {
        self.comm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CutPoint;
    use stsl_data::SyntheticCifar;

    fn data(n: usize) -> ImageDataset {
        SyntheticCifar::new(3)
            .difficulty(0.05)
            .generate_sized(n, 16)
    }

    #[test]
    fn construction_validates() {
        let cfg = SplitConfig::tiny(CutPoint(1), 2);
        assert!(SpatioTemporalTrainer::new(cfg, &data(40)).is_ok());
        let bad = SplitConfig::tiny(CutPoint(1), 0);
        assert!(SpatioTemporalTrainer::new(bad, &data(40)).is_err());
    }

    #[test]
    fn dataset_smaller_than_clients_rejected() {
        let cfg = SplitConfig::tiny(CutPoint(1), 8);
        let err = SpatioTemporalTrainer::new(cfg, &data(4)).unwrap_err();
        assert!(err.to_string().contains("cannot be split"));
    }

    #[test]
    fn one_epoch_processes_every_batch_once() {
        let cfg = SplitConfig::tiny(CutPoint(1), 2).batch_size(8);
        let mut t = SpatioTemporalTrainer::new(cfg, &data(48)).unwrap();
        t.run_epoch(0);
        // 48 samples, 2 clients × 24 samples -> 3 batches each.
        assert_eq!(t.server_mut().steps(), 6);
        assert_eq!(t.server_mut().served_per_client(), &[3, 3]);
        assert_eq!(t.comm().uplink_messages, 6);
        assert_eq!(t.comm().downlink_messages, 6);
    }

    #[test]
    fn training_improves_over_random_chance() {
        let cfg = SplitConfig::tiny(CutPoint(1), 2)
            .epochs(8)
            .learning_rate(0.02)
            .seed(1);
        let train = data(200);
        let test = SyntheticCifar::new(77)
            .difficulty(0.05)
            .generate_sized(60, 16);
        let mut t = SpatioTemporalTrainer::new(cfg, &train).unwrap();
        let report = t.train(&test);
        assert!(
            report.final_accuracy > 0.2,
            "accuracy {} not better than chance",
            report.final_accuracy
        );
        assert_eq!(report.epochs.len(), 8);
        assert_eq!(report.per_client_accuracy.len(), 2);
        // Loss decreased over training.
        assert!(report.epochs.last().unwrap().train_loss < report.epochs[0].train_loss);
    }

    #[test]
    fn identical_seeds_reproduce_reports() {
        let run = || {
            let cfg = SplitConfig::tiny(CutPoint(2), 2).epochs(1).seed(5);
            let train = data(60);
            let test = data(30);
            SpatioTemporalTrainer::new(cfg, &train)
                .unwrap()
                .train(&test)
        };
        let a = run();
        let b = run();
        assert_eq!(a.final_accuracy, b.final_accuracy);
        assert_eq!(a.epochs[0].train_loss, b.epochs[0].train_loss);
    }

    #[test]
    fn partial_participation_skips_clients_some_epochs() {
        let cfg = SplitConfig::tiny(CutPoint(1), 4)
            .epochs(1)
            .batch_size(8)
            .participation(0.5)
            .seed(2);
        let mut t = SpatioTemporalTrainer::new(cfg, &data(64)).unwrap();
        // Run several epochs; total served batches must be strictly fewer
        // than full participation would produce (4 clients × 2 batches ×
        // 6 epochs = 48), and every client id stays within range.
        for e in 0..6 {
            t.run_epoch(e);
        }
        let total: u64 = t.server_mut().served_per_client().iter().sum();
        assert!(total < 48, "expected skipped epochs, served {}", total);
        assert!(total > 0);
    }

    #[test]
    fn full_participation_is_default() {
        let cfg = SplitConfig::tiny(CutPoint(1), 2).epochs(1).batch_size(8);
        assert_eq!(cfg.participation, 1.0);
        assert!(SplitConfig::tiny(CutPoint(1), 1)
            .participation(0.0)
            .validate()
            .is_err());
        assert!(SplitConfig::tiny(CutPoint(1), 1)
            .participation(1.5)
            .validate()
            .is_err());
    }

    #[test]
    fn telemetry_journals_sync_protocol_with_logical_clock() {
        let cfg = SplitConfig::tiny(CutPoint(1), 2)
            .epochs(2)
            .batch_size(8)
            .seed(3);
        let train = data(32);
        let test = data(16);
        let mut t = SpatioTemporalTrainer::new(cfg, &train).unwrap();
        t.enable_telemetry(256);
        let r = t.train(&test);
        assert_eq!(r.epochs.len(), 2);
        let hub = t.telemetry().expect("telemetry enabled");
        // One snapshot per epoch, stamped with the logical step clock.
        assert_eq!(hub.snapshots().len(), 2);
        // 32 samples, 2 clients × 16 samples → 2 batches each × 2 epochs.
        let journal = hub.journal_log();
        assert_eq!(journal.count(JournalKind::ServiceStart), 8);
        assert_eq!(journal.count(JournalKind::SnapshotEmit), 2);
        // Logical timestamps are non-decreasing server step counts.
        let stamps: Vec<u64> = journal.iter().map(|e| e.at_us).collect();
        assert!(stamps.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(stamps.last().copied(), Some(8));
    }

    #[test]
    fn comm_bytes_scale_with_cut_depth() {
        // Deeper cuts produce smaller activations (pooling shrinks them).
        let bytes_at = |k: usize| {
            let cfg = SplitConfig::tiny(CutPoint(k), 1).epochs(1).batch_size(10);
            let train = data(20);
            let mut t = SpatioTemporalTrainer::new(cfg, &train).unwrap();
            t.run_epoch(0);
            t.comm().uplink_bytes
        };
        let shallow = bytes_at(1);
        let deep = bytes_at(3);
        assert!(shallow > deep, "uplink {} should exceed {}", shallow, deep);
    }
}
