//! U-shaped split learning: **no label sharing**.
//!
//! The paper's configuration (Fig. 1/2) sends labels to the server with
//! the smashed activations, because the server owns the output layer and
//! the loss. Vepakomma et al. (the paper's ref. [3]) describe the
//! *U-shaped* variant in which the end-system also keeps the network
//! **head** (the final classification layer and the loss), so labels never
//! leave the site — at the cost of a second round trip per batch:
//!
//! ```text
//! client lower  ──a──▶  server middle  ──f──▶  client head + loss
//! client lower  ◀─da──  server middle  ◀─df──  client head backward
//! ```
//!
//! This module implements that extension on the same layer machinery, as
//! the natural "future work" completion of the paper's framework.

use crate::config::SplitConfig;
use crate::model::CutPoint;
use crate::report::{CommReport, EpochStats, TrainReport};
use crate::trainer::ConfigError;
use stsl_data::{BatchPlan, ImageDataset, Partition};
use stsl_nn::loss::{Loss, SoftmaxCrossEntropy};
use stsl_nn::metrics::RunningMean;
use stsl_nn::optim::Optimizer;
use stsl_nn::{Mode, Sequential};
use stsl_tensor::init::derive_seed;

/// One end-system of the U-shaped protocol: private lower layers, private
/// head, private data, private labels.
#[derive(Debug)]
struct UClient {
    lower: Sequential,
    head: Sequential,
    data: ImageDataset,
    plan: BatchPlan,
    lower_opt: Box<dyn Optimizer>,
    head_opt: Box<dyn Optimizer>,
}

/// Trainer for U-shaped (label-private) split learning with multiple
/// end-systems sharing one server that owns only the middle layers.
#[derive(Debug)]
pub struct UShapedTrainer {
    config: SplitConfig,
    server_middle: Sequential,
    server_opt: Box<dyn Optimizer>,
    clients: Vec<UClient>,
    loss: SoftmaxCrossEntropy,
    comm: CommReport,
}

impl UShapedTrainer {
    /// Builds the trainer: the model is cut twice — after block
    /// `config.cut` (lower/middle boundary) and before the final dense
    /// layer (middle/head boundary).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is invalid, the cut
    /// leaves no middle layers for the server, or the dataset is too
    /// small.
    pub fn new(config: SplitConfig, train: &ImageDataset) -> Result<Self, ConfigError> {
        config.validate().map_err(ConfigError)?;
        if train.len() < config.end_systems {
            return Err(ConfigError("dataset smaller than client count".into()));
        }
        let total_layers = 3 * config.arch.blocks() + 4; // blocks + flatten/dense/relu/dense
        let lower_end = CutPoint(config.cut.blocks()).layer_index();
        let head_start = total_layers - 1; // the final Dense
        if lower_end >= head_start {
            return Err(ConfigError(format!(
                "cut {} leaves no middle layers for the server",
                config.cut.blocks()
            )));
        }
        let partition: Partition = config.partition.into();
        let shards = partition.split(train, config.end_systems, derive_seed(config.seed, 7));
        // The server middle comes from the shared seed.
        let (_, rest) = config.arch.build(config.seed).split_at(lower_end);
        let (server_middle, _) = rest.split_at(head_start - lower_end);
        let clients = shards
            .into_iter()
            .enumerate()
            .map(|(i, shard)| {
                let client_seed = derive_seed(config.seed, 2000 + i as u64);
                let (lower, rest) = config.arch.build(client_seed).split_at(lower_end);
                let (_, head) = rest.split_at(head_start - lower_end);
                UClient {
                    lower,
                    head,
                    data: shard,
                    plan: BatchPlan::new(config.batch_size, derive_seed(client_seed, 1)),
                    lower_opt: config.build_optimizer(),
                    head_opt: config.build_optimizer(),
                }
            })
            .collect();
        Ok(UShapedTrainer {
            server_opt: config.build_optimizer(),
            config,
            server_middle,
            clients,
            loss: SoftmaxCrossEntropy::new(),
            comm: CommReport::default(),
        })
    }

    /// Runs one epoch (clients interleaved round-robin). Returns
    /// `(mean loss, mean batch accuracy)`.
    pub fn run_epoch(&mut self, epoch: usize) -> (f32, f32) {
        let mut loss_mean = RunningMean::new();
        let mut acc_mean = RunningMean::new();
        let schedules: Vec<Vec<Vec<usize>>> = self
            .clients
            .iter()
            .map(|c| c.plan.epoch_indices(c.data.len(), epoch as u64))
            .collect();
        let mut cursor = vec![0usize; self.clients.len()];
        let mut remaining = true;
        while remaining {
            remaining = false;
            for (i, client) in self.clients.iter_mut().enumerate() {
                let Some(indices) = schedules[i].get(cursor[i]) else {
                    continue;
                };
                cursor[i] += 1;
                remaining = true;
                let (images, targets) = client.data.batch(indices);
                // Leg 1: client lower forward, activations uplink.
                client.lower.zero_grads();
                let smashed = client.lower.forward(&images, Mode::Train);
                self.comm.uplink_bytes += (smashed.len() * 4) as u64;
                self.comm.uplink_messages += 1;
                // Leg 2: server middle forward, features downlink.
                self.server_middle.zero_grads();
                let features = self.server_middle.forward(&smashed, Mode::Train);
                self.comm.downlink_bytes += (features.len() * 4) as u64;
                self.comm.downlink_messages += 1;
                // Leg 3: client head + loss (labels stay here).
                client.head.zero_grads();
                let logits = client.head.forward(&features, Mode::Train);
                let out = self.loss.forward(&logits, &targets);
                let dfeatures = client.head.backward(&out.grad);
                // Leg 4: feature gradient uplink, middle backward.
                self.comm.uplink_bytes += (dfeatures.len() * 4) as u64;
                self.comm.uplink_messages += 1;
                let dsmashed = self.server_middle.backward(&dfeatures);
                // Leg 5: cut gradient downlink, lower backward.
                self.comm.downlink_bytes += (dsmashed.len() * 4) as u64;
                self.comm.downlink_messages += 1;
                client.lower.backward(&dsmashed);
                // Updates.
                client
                    .head
                    .step_with_base(client.head_opt.as_mut(), 1 << 16);
                self.server_middle.step(self.server_opt.as_mut());
                client.lower.step(client.lower_opt.as_mut());

                let preds = logits.argmax_rows();
                let hits = preds.iter().zip(&targets).filter(|(p, t)| p == t).count();
                loss_mean.push(out.value);
                acc_mean.push(hits as f32 / targets.len().max(1) as f32);
            }
        }
        (
            loss_mean.mean().unwrap_or(0.0),
            acc_mean.mean().unwrap_or(0.0),
        )
    }

    /// Test accuracy through client `i`'s lower + head around the shared
    /// middle.
    pub fn evaluate_client(&mut self, i: usize, test: &ImageDataset) -> f32 {
        let batch = self.config.batch_size.max(32);
        let client = &mut self.clients[i];
        let mut hits = 0usize;
        let mut start = 0;
        while start < test.len() {
            let end = (start + batch).min(test.len());
            let indices: Vec<usize> = (start..end).collect();
            let (images, targets) = test.batch(&indices);
            let smashed = client.lower.forward(&images, Mode::Eval);
            let features = self.server_middle.forward(&smashed, Mode::Eval);
            let logits = client.head.forward(&features, Mode::Eval);
            let preds = logits.argmax_rows();
            hits += preds.iter().zip(&targets).filter(|(p, t)| p == t).count();
            start = end;
        }
        hits as f32 / test.len().max(1) as f32
    }

    /// Mean test accuracy across clients.
    pub fn evaluate(&mut self, test: &ImageDataset) -> f32 {
        let n = self.clients.len();
        let per: Vec<f32> = (0..n).map(|i| self.evaluate_client(i, test)).collect();
        stsl_tensor::mean_f32(&per)
    }

    /// Runs the configured training and reports like the other trainers.
    pub fn train(&mut self, test: &ImageDataset) -> TrainReport {
        let start = crate::WallTimer::start();
        let mut epochs = Vec::new();
        for e in 0..self.config.epochs {
            let (train_loss, train_accuracy) = self.run_epoch(e);
            let test_accuracy = self.evaluate(test);
            epochs.push(EpochStats {
                epoch: e,
                train_loss,
                train_accuracy,
                test_accuracy,
                anomalies_rejected: 0,
                rollbacks: 0,
            });
        }
        let per_client_accuracy: Vec<f32> = (0..self.clients.len())
            .map(|i| self.evaluate_client(i, test))
            .collect();
        let final_accuracy = stsl_tensor::mean_f32(&per_client_accuracy);
        TrainReport {
            label: format!("u-shaped {}", self.config.cut.label()),
            end_systems: self.config.end_systems,
            cut_blocks: self.config.cut.blocks(),
            epochs,
            final_accuracy,
            per_client_accuracy,
            comm: self.comm,
            wall_seconds: start.seconds(),
            anomalies_rejected: 0,
            rollbacks: 0,
        }
    }

    /// Communication totals so far. Note the doubled message count per
    /// batch relative to the label-sharing protocol.
    pub fn comm(&self) -> CommReport {
        self.comm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsl_data::SyntheticCifar;

    fn data(n: usize, seed: u64) -> ImageDataset {
        SyntheticCifar::new(seed)
            .difficulty(0.05)
            .generate_sized(n, 16)
    }

    #[test]
    fn builds_and_trains_one_epoch() {
        let cfg = SplitConfig::tiny(CutPoint(1), 2).epochs(1).seed(1);
        let train = data(64, 1);
        let test = data(20, 2);
        let mut t = UShapedTrainer::new(cfg, &train).unwrap();
        let report = t.train(&test);
        assert_eq!(report.epochs.len(), 1);
        assert!(report.label.starts_with("u-shaped"));
        assert!(report.epochs[0].train_loss.is_finite());
    }

    #[test]
    fn four_messages_per_batch() {
        let cfg = SplitConfig::tiny(CutPoint(1), 1)
            .epochs(1)
            .batch_size(16)
            .seed(2);
        let train = data(32, 3);
        let mut t = UShapedTrainer::new(cfg, &train).unwrap();
        t.run_epoch(0);
        // 2 batches × 2 uplinks and 2 downlinks each.
        assert_eq!(t.comm().uplink_messages, 4);
        assert_eq!(t.comm().downlink_messages, 4);
    }

    #[test]
    fn training_reduces_loss() {
        let cfg = SplitConfig::tiny(CutPoint(1), 2)
            .epochs(4)
            .seed(3)
            .learning_rate(0.01);
        let train = data(160, 4);
        let test = data(40, 5);
        let mut t = UShapedTrainer::new(cfg, &train).unwrap();
        let report = t.train(&test);
        assert!(
            report.epochs.last().unwrap().train_loss < report.epochs[0].train_loss,
            "loss {:?}",
            report
                .epochs
                .iter()
                .map(|e| e.train_loss)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn rejects_cut_that_leaves_no_middle() {
        // tiny arch: blocks = 3 -> layers = 13, head starts at 12; cut 4
        // exceeds blocks and cut 3 -> lower_end 9 < 12, fine. Construct a
        // degenerate arch where the cut eats everything up to the head.
        let mut cfg = SplitConfig::tiny(CutPoint(3), 1);
        cfg.arch.filters = vec![4]; // 1 block -> layers = 7, head_start = 6
        cfg.cut = CutPoint(1); // lower_end 3 < 6: ok
        assert!(UShapedTrainer::new(cfg.clone(), &data(16, 6)).is_ok());
        // No misconfiguration possible via CutPoint alone here; check the
        // dataset guard instead.
        assert!(UShapedTrainer::new(cfg, &data(0, 7)).is_err());
    }

    fn grads_of(net: &mut Sequential) -> Vec<stsl_tensor::Tensor> {
        let mut v = Vec::new();
        net.visit_params(&mut |p| v.push(p.grad.clone()));
        v
    }

    #[test]
    fn cut_boundary_gradients_match_monolithic_network() {
        use stsl_tensor::init::rng_from_seed;
        use stsl_tensor::Tensor;

        // Build the same seeded network twice: once monolithic, once cut
        // at both U-shaped boundaries (lower/middle and middle/head). A
        // forward/backward through the three segments must reproduce the
        // monolithic run bit for bit — logits, loss, every parameter
        // gradient, and the input gradient that crosses both cuts.
        let cfg = SplitConfig::tiny(CutPoint(2), 1);
        let arch = &cfg.arch;
        let total_layers = 3 * arch.blocks() + 4;
        let lower_end = CutPoint(2).layer_index();
        let head_start = total_layers - 1;
        let seed = 42u64;

        let mut rng = rng_from_seed(77);
        let x = Tensor::randn([4, 3, 16, 16], &mut rng);
        let targets = vec![0usize, 3, 7, 9];
        let loss = SoftmaxCrossEntropy::new();

        let mut full = arch.build(seed);
        full.zero_grads();
        let logits_full = full.forward(&x, Mode::Train);
        let out_full = loss.forward(&logits_full, &targets);
        let dx_full = full.backward(&out_full.grad);

        let (mut lower, rest) = arch.build(seed).split_at(lower_end);
        let (mut middle, mut head) = rest.split_at(head_start - lower_end);
        lower.zero_grads();
        middle.zero_grads();
        head.zero_grads();
        let smashed = lower.forward(&x, Mode::Train);
        let features = middle.forward(&smashed, Mode::Train);
        let logits = head.forward(&features, Mode::Train);
        assert_eq!(logits, logits_full, "split forward drifted");
        let out = loss.forward(&logits, &targets);
        assert_eq!(out.value, out_full.value);
        let dfeatures = head.backward(&out.grad);
        let dsmashed = middle.backward(&dfeatures);
        let dx = lower.backward(&dsmashed);
        assert_eq!(dx, dx_full, "input gradient drifted across the cuts");

        let full_grads = grads_of(&mut full);
        let mut split_grads = grads_of(&mut lower);
        split_grads.extend(grads_of(&mut middle));
        split_grads.extend(grads_of(&mut head));
        assert_eq!(full_grads.len(), split_grads.len());
        for (i, (a, b)) in full_grads.iter().zip(&split_grads).enumerate() {
            assert_eq!(a, b, "parameter gradient {} differs across the cut", i);
        }

        // Gradcheck through the composed pipeline: finite differences on
        // the first lower-layer parameter tensor (the one whose gradient
        // had to travel through both cut boundaries). This architecture
        // has no stochastic or stateful layers, so Eval-mode probes match
        // the Train-mode analytic gradients.
        let lower_grad0 = grads_of(&mut lower)[0].clone();
        let composed_loss =
            |lower: &mut Sequential, middle: &mut Sequential, head: &mut Sequential| -> f32 {
                let s = lower.forward(&x, Mode::Eval);
                let f = middle.forward(&s, Mode::Eval);
                let l = head.forward(&f, Mode::Eval);
                loss.forward(&l, &targets).value
            };
        fn first_param_coord(net: &mut Sequential, ci: usize) -> f32 {
            let mut got = 0.0f32;
            let mut i = 0;
            net.visit_params(&mut |p| {
                if i == 0 {
                    got = p.value.as_slice()[ci];
                }
                i += 1;
            });
            got
        }
        fn set_first_param_coord(net: &mut Sequential, ci: usize, v: f32) {
            let mut i = 0;
            net.visit_params(&mut |p| {
                if i == 0 {
                    p.value.as_mut_slice()[ci] = v;
                }
                i += 1;
            });
        }
        let eps = 1e-2f32;
        for ci in (0..lower_grad0.len()).step_by(lower_grad0.len() / 5) {
            let orig = first_param_coord(&mut lower, ci);
            set_first_param_coord(&mut lower, ci, orig + eps);
            let lp = composed_loss(&mut lower, &mut middle, &mut head);
            set_first_param_coord(&mut lower, ci, orig - eps);
            let lm = composed_loss(&mut lower, &mut middle, &mut head);
            set_first_param_coord(&mut lower, ci, orig);
            let num = (lp - lm) / (2.0 * eps);
            let ana = lower_grad0.as_slice()[ci];
            // Loose tolerance: an f32 central difference through three
            // relu/maxpool stages is coarse near kinks. The bitwise
            // monolithic comparison above is the exact check; this probe
            // only guards against sign/scale errors at the boundary.
            assert!(
                (num - ana).abs() < 1e-1 * (1.0 + num.abs().max(ana.abs())),
                "cut-boundary grad[{}]: {} vs {}",
                ci,
                num,
                ana
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let run = || {
            let cfg = SplitConfig::tiny(CutPoint(2), 2).epochs(1).seed(9);
            let mut t = UShapedTrainer::new(cfg, &data(48, 8)).unwrap();
            t.train(&data(16, 9)).final_accuracy
        };
        assert_eq!(run(), run());
    }
}
