//! The one sanctioned host-clock read in the deterministic crates.
//!
//! Reports carry a `wall_seconds` field — how long the run took on the
//! host, purely informational. Everything else in `tensor`/`nn`/`split`/
//! `simnet` must use the simnet virtual clock, and `stsl-audit` rule R1
//! enforces that statically. Funnelling the host clock through this
//! single type keeps the workspace down to exactly one audited
//! suppression instead of one per trainer.

/// Measures elapsed host wall-clock time for report metadata.
///
/// Never use this for anything that feeds simulation ordering, scheduling
/// or learning math — those must be deterministic given the seed.
#[derive(Debug, Clone, Copy)]
pub struct WallTimer(std::time::Instant);

impl WallTimer {
    /// Starts a timer at the current host time.
    pub fn start() -> Self {
        // stsl-audit: allow(determinism, reason = "single sanctioned host-clock read; feeds only the informational wall_seconds report field, never simulation or training state")
        WallTimer(std::time::Instant::now())
    }

    /// Seconds elapsed since [`WallTimer::start`].
    pub fn seconds(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_is_monotonic_and_nonnegative() {
        let t = WallTimer::start();
        let a = t.seconds();
        let b = t.seconds();
        assert!(a >= 0.0);
        assert!(b >= a);
    }
}
