//! Plain-text dashboard: a fixed-width, deterministic rendering of one
//! [`Snapshot`] for terminals and CI logs.

use crate::registry::Snapshot;

const BAR_WIDTH: usize = 24;

/// Render a snapshot as a plain-text dashboard.
///
/// One block per metric: a per-end-system table of count/p50/p90/p99/max
/// plus an ASCII bar proportional to that actor's sample count (relative
/// to the busiest actor of the same metric). Output is a pure function of
/// the snapshot, so it is byte-identical across runs and thread counts.
pub fn render_dashboard(snapshot: &Snapshot) -> String {
    let mut out = format!(
        "telemetry snapshot seq={} at t={:.3}s\n",
        snapshot.seq,
        snapshot.at_us as f64 / 1e6
    );
    for m in &snapshot.metrics {
        out.push_str(&format!("\n{}\n", m.metric.as_str()));
        if m.series.is_empty() {
            out.push_str("  (no samples)\n");
            continue;
        }
        out.push_str(&format!(
            "  {:>5} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
            "actor", "count", "p50", "p90", "p99", "max"
        ));
        let busiest = m.series.iter().map(|s| s.count).max().unwrap_or(1).max(1);
        for s in &m.series {
            let filled = ((s.count * BAR_WIDTH as u64) / busiest) as usize;
            out.push_str(&format!(
                "  {:>5} {:>8} {:>10} {:>10} {:>10} {:>10}  {}\n",
                s.actor,
                s.count,
                s.p50,
                s.p90,
                s.p99,
                s.max,
                "#".repeat(filled.clamp(1, BAR_WIDTH))
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{MetricId, MetricRegistry};

    #[test]
    fn dashboard_renders_every_metric_block() {
        let mut reg = MetricRegistry::new();
        reg.record(MetricId::UplinkLatency, 0, 5_000);
        reg.record(MetricId::UplinkLatency, 1, 9_000);
        reg.record(MetricId::UplinkLatency, 1, 9_500);
        let text = render_dashboard(&reg.snapshot(2_500_000, 3));
        assert!(text.starts_with("telemetry snapshot seq=3 at t=2.500s\n"));
        for id in MetricId::ALL {
            assert!(text.contains(id.as_str()), "{} block missing", id.as_str());
        }
        // Silent metrics say so instead of vanishing.
        assert!(text.contains("(no samples)"));
        // The busiest actor gets the full bar.
        assert!(text.contains(&"#".repeat(24)));
    }

    #[test]
    fn dashboard_is_deterministic() {
        let mut reg = MetricRegistry::new();
        for i in 0..10 {
            reg.record(MetricId::QueueDepth, i % 2, i);
        }
        let snap = reg.snapshot(1_000, 0);
        assert_eq!(render_dashboard(&snap), render_dashboard(&snap));
    }
}
