//! Log-linear HDR-style histogram with a fixed bucket layout and an exact,
//! order-independent merge.
//!
//! # Bucket layout
//!
//! Values are `u64` (the simulation's native unit is microseconds). The
//! first [`2^SUB_BITS`](SUB_BITS) buckets are exact (one bucket per value);
//! above that, each power-of-two octave is split into `2^SUB_BITS` linear
//! sub-buckets, so the relative error of any reported quantile is bounded
//! by `2^-SUB_BITS` (6.25% with `SUB_BITS = 4`). The layout is a compile
//! time constant — every histogram in the workspace has the same
//! [`BUCKETS`] buckets, which is what makes merge a plain element-wise
//! `u64` add: associative, commutative and bitwise-deterministic.

/// Linear sub-bucket resolution: each octave is split into `2^SUB_BITS`
/// buckets.
pub const SUB_BITS: u32 = 4;

const SUB: u64 = 1 << SUB_BITS;

/// Total number of buckets: `2^SUB_BITS` exact low buckets plus
/// `2^SUB_BITS` sub-buckets for each of the `64 - SUB_BITS` octaves.
pub const BUCKETS: usize = (SUB as usize) * (64 - SUB_BITS as usize + 1);

/// Bucket index for a value. Total order preserving: `a <= b` implies
/// `bucket_index(a) <= bucket_index(b)`.
pub fn bucket_index(value: u64) -> usize {
    if value < SUB {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros();
    let sub = ((value >> (exp - SUB_BITS)) & (SUB - 1)) as usize;
    SUB as usize + (exp - SUB_BITS) as usize * SUB as usize + sub
}

/// Smallest value that lands in bucket `index` (the value a quantile
/// readout reports for that bucket).
pub fn bucket_lower(index: usize) -> u64 {
    let sub = SUB as usize;
    if index < sub {
        return index as u64;
    }
    let octave = (index - sub) / sub;
    let within = ((index - sub) % sub) as u64;
    (SUB + within) << octave
}

/// Fixed-layout log-linear histogram of `u64` samples.
///
/// Tracks exact `count`, `sum`, `min` and `max` alongside the bucket
/// counts, so the extremes are always reported exactly even though interior
/// quantiles are bucket lower bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Fold another histogram into this one. Element-wise integer adds
    /// only, so merge is associative, commutative and bitwise
    /// deterministic: any merge tree over the same set of single-sample
    /// histograms yields an identical struct.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact smallest recorded sample, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact largest recorded sample, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of the recorded samples (0.0 when empty). Informational only —
    /// deterministic output paths stick to integer quantiles.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw bucket counts (length [`BUCKETS`]).
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }

    /// Value at quantile `q` in `[0, 1]`: the lower bound of the bucket
    /// holding the sample of rank `ceil(q * count)`, clamped into
    /// `[min, max]` so the extremes stay exact. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_lower(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (see [`Histogram::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile (see [`Histogram::quantile`]).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile (see [`Histogram::quantile`]).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_constants() {
        assert_eq!(BUCKETS, 976);
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(15), 15);
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn index_is_monotone_and_lower_bound_inverts_it() {
        // Exhaustive near the low/octave boundaries, spot checks above.
        let probes: Vec<u64> = (0..2048)
            .chain([
                4095,
                4096,
                4097,
                1 << 20,
                (1 << 20) + 7,
                u64::MAX - 1,
                u64::MAX,
            ])
            .collect();
        let mut prev = 0usize;
        for (k, &v) in probes.iter().enumerate() {
            let idx = bucket_index(v);
            if k > 0 {
                assert!(idx >= prev, "index not monotone at {v}");
            }
            prev = idx;
            let lo = bucket_lower(idx);
            assert!(lo <= v, "lower bound {lo} above value {v}");
            if idx + 1 < BUCKETS {
                assert!(bucket_lower(idx + 1) > v, "value {v} not below next bucket");
            }
        }
    }

    #[test]
    fn low_values_are_exact() {
        for v in 0..16 {
            assert_eq!(bucket_lower(bucket_index(v)), v);
        }
    }

    #[test]
    fn golden_percentiles_on_1_to_100() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
        // Rank 50 is the value 50, whose bucket lower bound is exactly 50.
        assert_eq!(h.p50(), 50);
        // Rank 90 → value 90 lands in bucket [88, 92).
        assert_eq!(h.p90(), 88);
        // Rank 99 → value 99 lands in bucket [96, 100).
        assert_eq!(h.p99(), 96);
        // Rank 100 → value 100 is itself a bucket lower bound.
        assert_eq!(h.quantile(1.0), 100);
        assert_eq!(h.sum(), 5050);
    }

    #[test]
    fn golden_percentiles_exact_below_sixteen() {
        let mut h = Histogram::new();
        for v in [3u64, 3, 7, 9, 12] {
            h.record(v);
        }
        assert_eq!(h.p50(), 7);
        assert_eq!(h.p90(), 12);
        assert_eq!(h.p99(), 12);
        assert_eq!(h.quantile(0.0), 3);
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let mut h = Histogram::new();
        h.record(123_456);
        // The bucket lower bound is below 123_456, but clamping to
        // [min, max] makes every quantile exact for one sample.
        assert_eq!(h.p50(), 123_456);
        assert_eq!(h.p99(), 123_456);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_matches_recording_everything_into_one() {
        let samples = [1u64, 5, 16, 17, 1_000, 65_536, 1 << 40];
        let mut whole = Histogram::new();
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for (i, &v) in samples.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        let mut merged = left.clone();
        merge_pair(&mut merged, &right);
        assert_eq!(merged, whole);
        // Commutative.
        let mut flipped = right.clone();
        merge_pair(&mut flipped, &left);
        assert_eq!(flipped, whole);
        // Empty is the identity.
        let mut with_empty = whole.clone();
        merge_pair(&mut with_empty, &Histogram::new());
        assert_eq!(with_empty, whole);
    }

    fn merge_pair(a: &mut Histogram, b: &Histogram) {
        a.merge(b);
    }
}
