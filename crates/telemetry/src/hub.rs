//! The [`TelemetryHub`]: the one handle instrumentation sites talk to.

use crate::journal::{EventJournal, JournalKind};
use crate::registry::{MetricId, MetricRegistry, Snapshot};

/// Bundles the metric registry, the event journal and the emitted
/// snapshot series behind one mutable handle.
///
/// Boundary types are plain `u64` so the hub can be embedded
/// anywhere in the stack (including `stsl-simnet`) without a dependency
/// on simulation time types; callers pass `SimTime::as_micros()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryHub {
    registry: MetricRegistry,
    journal: EventJournal,
    snapshots: Vec<Snapshot>,
}

impl TelemetryHub {
    /// A hub whose journal retains at most `journal_capacity` events.
    pub fn new(journal_capacity: usize) -> Self {
        Self {
            registry: MetricRegistry::new(),
            journal: EventJournal::new(journal_capacity),
            snapshots: Vec::new(),
        }
    }

    /// Record one metric sample.
    pub fn record(&mut self, metric: MetricId, actor: u64, value: u64) {
        self.registry.record(metric, actor, value);
    }

    /// Journal an event; returns `true` if an older event was evicted.
    pub fn journal(&mut self, at_us: u64, kind: JournalKind, actor: u64) -> bool {
        self.journal.push(at_us, kind, actor)
    }

    /// Emit a snapshot of the registry at sim-time `at_us`; returns its
    /// sequence number.
    pub fn emit_snapshot(&mut self, at_us: u64) -> u64 {
        let seq = self.snapshots.len() as u64;
        let snap = self.registry.snapshot(at_us, seq);
        self.snapshots.push(snap);
        seq
    }

    /// All emitted snapshots, in emission order.
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snapshots
    }

    /// The most recently emitted snapshot.
    pub fn latest_snapshot(&self) -> Option<&Snapshot> {
        self.snapshots.last()
    }

    /// The metric registry (read-only).
    pub fn registry(&self) -> &MetricRegistry {
        &self.registry
    }

    /// The event journal (read-only).
    pub fn journal_log(&self) -> &EventJournal {
        &self.journal
    }

    /// Deterministic JSON export: all snapshots, the retained journal and
    /// the eviction count, with a fixed key order.
    pub fn export_json(&self) -> String {
        let mut out = String::from("{\"snapshots\":[");
        for (i, s) in self.snapshots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&s.to_json());
        }
        out.push_str("],\"journal\":[");
        for (i, e) in self.journal.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.to_json());
        }
        out.push_str(&format!(
            "],\"journal_evicted\":{}}}",
            self.journal.evicted()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_round_trip() {
        let mut hub = TelemetryHub::new(4);
        hub.record(MetricId::UplinkLatency, 0, 1_000);
        assert!(!hub.journal(5, JournalKind::Arrival, 0));
        assert_eq!(hub.emit_snapshot(10), 0);
        assert_eq!(hub.emit_snapshot(20), 1);
        assert_eq!(hub.snapshots().len(), 2);
        assert_eq!(hub.latest_snapshot().unwrap().at_us, 20);
        assert_eq!(hub.journal_log().len(), 1);
    }

    #[test]
    fn export_json_shape() {
        let mut hub = TelemetryHub::new(2);
        hub.record(MetricId::ServiceTime, 9, 50);
        hub.journal(1, JournalKind::ServiceStart, 9);
        hub.emit_snapshot(100);
        let json = hub.export_json();
        assert!(json.starts_with("{\"snapshots\":[{\"at_us\":100,"));
        assert!(json.contains("\"journal\":[{\"at_us\":1,\"kind\":\"service_start\",\"actor\":9}]"));
        assert!(json.ends_with("\"journal_evicted\":0}"));
    }

    #[test]
    fn export_is_identical_for_identical_event_streams() {
        let run = || {
            let mut hub = TelemetryHub::new(8);
            for i in 0..20u64 {
                hub.record(MetricId::QueueDepth, i % 3, i);
                hub.journal(i * 10, JournalKind::Arrival, i % 3);
            }
            hub.emit_snapshot(500);
            hub.export_json()
        };
        assert_eq!(run(), run());
    }
}
