//! Typed, bounded event journal.
//!
//! A ring buffer of the last `capacity` simulation events, stamped with
//! sim-time microseconds supplied by the caller (never a host clock). When
//! full, the oldest event is evicted; [`EventJournal::push`] reports the
//! eviction so the caller can account for it (the async trainer traces it
//! as `TraceKind::JournalDrop` and the audit's R3 rule holds that counter
//! to the same liveness discipline as every other drop path).

use std::collections::VecDeque;

/// What happened. Mirrors the observable protocol events of both split
/// trainers; the journal is typed so exports cannot drift into free-form
/// strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum JournalKind {
    /// An activation message reached the server's arrival queue.
    Arrival,
    /// The server started processing a queued batch.
    ServiceStart,
    /// A gradient message was delivered back to its end-system.
    GradientDelivered,
    /// The scheduling policy discarded a queued batch.
    SchedulerDrop,
    /// The network lost a message.
    NetworkDrop,
    /// A lost message was retransmitted after a backoff.
    Retransmit,
    /// The ingress guard rejected an anomalous update.
    AnomalyRejected,
    /// An end-system entered quarantine.
    Quarantine,
    /// An end-system rejoined after quarantine.
    QuarantineRelease,
    /// An update was dropped because its sender was quarantined.
    QuarantineDrop,
    /// The health watchdog rolled the server back to a checkpoint.
    Rollback,
    /// An auto-checkpoint was taken.
    CheckpointSave,
    /// An end-system restored from a checkpoint after a crash.
    CheckpointRestore,
    /// An end-system crashed.
    ClientCrash,
    /// An end-system recovered.
    ClientRecover,
    /// A telemetry snapshot was emitted.
    SnapshotEmit,
    /// A new end-system joined the fleet mid-training.
    ClientJoin,
    /// An end-system departed the fleet.
    ClientLeave,
    /// A departed end-system rejoined and resynced.
    ClientRejoin,
    /// The bounded ingress queue shed a batch under overload.
    IngressShed,
    /// A per-link circuit breaker tripped open.
    BreakerTrip,
    /// A round deadline fired and the partial quorum was applied.
    DeadlinePartial,
    /// An adversarial persona poisoned an outgoing update.
    AttackInjected,
    /// The robust aggregator combined a full window of updates.
    RobustApply,
    /// The robust aggregator flagged a sender as a statistical outlier.
    RobustOutlier,
}

impl JournalKind {
    /// Stable snake_case label used in JSONL export.
    pub fn as_str(self) -> &'static str {
        match self {
            JournalKind::Arrival => "arrival",
            JournalKind::ServiceStart => "service_start",
            JournalKind::GradientDelivered => "gradient_delivered",
            JournalKind::SchedulerDrop => "scheduler_drop",
            JournalKind::NetworkDrop => "network_drop",
            JournalKind::Retransmit => "retransmit",
            JournalKind::AnomalyRejected => "anomaly_rejected",
            JournalKind::Quarantine => "quarantine",
            JournalKind::QuarantineRelease => "quarantine_release",
            JournalKind::QuarantineDrop => "quarantine_drop",
            JournalKind::Rollback => "rollback",
            JournalKind::CheckpointSave => "checkpoint_save",
            JournalKind::CheckpointRestore => "checkpoint_restore",
            JournalKind::ClientCrash => "client_crash",
            JournalKind::ClientRecover => "client_recover",
            JournalKind::SnapshotEmit => "snapshot_emit",
            JournalKind::ClientJoin => "client_join",
            JournalKind::ClientLeave => "client_leave",
            JournalKind::ClientRejoin => "client_rejoin",
            JournalKind::IngressShed => "ingress_shed",
            JournalKind::BreakerTrip => "breaker_trip",
            JournalKind::DeadlinePartial => "deadline_partial",
            JournalKind::AttackInjected => "attack_injected",
            JournalKind::RobustApply => "robust_apply",
            JournalKind::RobustOutlier => "robust_outlier",
        }
    }
}

/// One journal entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalEvent {
    /// Simulation time in microseconds (a logical clock for the
    /// synchronous trainer).
    pub at_us: u64,
    /// Event type.
    pub kind: JournalKind,
    /// The end-system (or server) the event is about. `u64` so
    /// fleet-scale ids are never truncated or aliased.
    pub actor: u64,
}

impl JournalEvent {
    /// Render as one JSONL line (no trailing newline), fixed key order.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"at_us\":{},\"kind\":\"{}\",\"actor\":{}}}",
            self.at_us,
            self.kind.as_str(),
            self.actor
        )
    }
}

/// Bounded ring buffer keeping the most recent events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventJournal {
    events: VecDeque<JournalEvent>,
    capacity: usize,
    evicted: u64,
}

impl EventJournal {
    /// A journal keeping at most `capacity` events (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            events: VecDeque::with_capacity(capacity),
            capacity,
            evicted: 0,
        }
    }

    /// Append an event; returns `true` if an older event was evicted to
    /// make room.
    pub fn push(&mut self, at_us: u64, kind: JournalKind, actor: u64) -> bool {
        let evicting = self.events.len() == self.capacity;
        if evicting {
            self.events.pop_front();
            self.evicted += 1;
        }
        self.events.push_back(JournalEvent { at_us, kind, actor });
        evicting
    }

    /// Events currently retained, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &JournalEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been journaled (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events evicted since creation.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Retained events of a given kind.
    pub fn count(&self, kind: JournalKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// JSONL export: one event per line, oldest first, trailing newline
    /// after every line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_most_recent_and_reports_evictions() {
        let mut j = EventJournal::new(3);
        assert!(!j.push(1, JournalKind::Arrival, 0));
        assert!(!j.push(2, JournalKind::ServiceStart, 0));
        assert!(!j.push(3, JournalKind::GradientDelivered, 0));
        assert!(j.push(4, JournalKind::Arrival, 1));
        assert_eq!(j.len(), 3);
        assert_eq!(j.evicted(), 1);
        let first = j.iter().next().unwrap();
        assert_eq!(first.at_us, 2);
    }

    #[test]
    fn jsonl_lines_are_stable() {
        let mut j = EventJournal::new(8);
        j.push(1_500, JournalKind::Quarantine, 2);
        j.push(2_500, JournalKind::Rollback, 7);
        assert_eq!(
            j.to_jsonl(),
            "{\"at_us\":1500,\"kind\":\"quarantine\",\"actor\":2}\n\
             {\"at_us\":2500,\"kind\":\"rollback\",\"actor\":7}\n"
        );
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut j = EventJournal::new(0);
        assert_eq!(j.capacity(), 1);
        assert!(!j.push(1, JournalKind::Arrival, 0));
        assert!(j.push(2, JournalKind::Arrival, 0));
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn count_filters_by_kind() {
        let mut j = EventJournal::new(8);
        j.push(1, JournalKind::Arrival, 0);
        j.push(2, JournalKind::Arrival, 1);
        j.push(3, JournalKind::NetworkDrop, 1);
        assert_eq!(j.count(JournalKind::Arrival), 2);
        assert_eq!(j.count(JournalKind::NetworkDrop), 1);
        assert_eq!(j.count(JournalKind::Rollback), 0);
    }
}
