//! Deterministic observability for spatio-temporal split learning.
//!
//! The paper's argument is statistical: geo-distributed end-systems with
//! heterogeneous link latencies bias training unless the server queues and
//! schedules arrivals. Scalar counters cannot show that bias — it lives in
//! the *distributions* of per-end-system latency, queue depth and gradient
//! staleness. This crate is the measurement layer:
//!
//! * [`Histogram`] — a log-linear HDR-style histogram with a fixed bucket
//!   layout, exact (associative, commutative, bitwise-deterministic) merge
//!   and p50/p90/p99/max readouts;
//! * [`EventJournal`] — a typed, bounded ring buffer of sim-time-stamped
//!   events with JSONL export;
//! * [`MetricRegistry`] / [`Snapshot`] — per-metric, per-end-system
//!   histogram series keyed by `BTreeMap` (deterministic iteration) with
//!   periodic snapshot emission;
//! * [`TelemetryHub`] — the single handle instrumentation sites talk to;
//! * [`render_dashboard`] — a plain-text dashboard of the latest snapshot.
//!
//! # Determinism rules
//!
//! Everything in this crate is pure data-structure code: no clocks, no
//! threads, no randomness, no floating-point accumulation in merge paths.
//! Timestamps come *in* from the simulation (`at_us`), never from the host.
//! Exports are hand-rendered JSON with a fixed key order, so two runs that
//! record the same events produce byte-identical output regardless of
//! `STSL_THREADS`.
//!
//! # Examples
//!
//! ```
//! use stsl_telemetry::{JournalKind, MetricId, TelemetryHub};
//!
//! let mut hub = TelemetryHub::new(64);
//! hub.record(MetricId::UplinkLatency, 0, 5_000);
//! hub.record(MetricId::UplinkLatency, 0, 7_000);
//! hub.journal(1_000, JournalKind::Arrival, 0);
//! let seq = hub.emit_snapshot(10_000);
//! assert_eq!(seq, 0);
//! let snap = hub.latest_snapshot().unwrap();
//! assert_eq!(snap.metrics.len(), MetricId::ALL.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dashboard;
mod histogram;
mod hub;
mod journal;
mod registry;

pub use dashboard::render_dashboard;
pub use histogram::{bucket_index, bucket_lower, Histogram, BUCKETS, SUB_BITS};
pub use hub::TelemetryHub;
pub use journal::{EventJournal, JournalEvent, JournalKind};
pub use registry::{ActorSeries, MetricId, MetricRegistry, MetricSnapshot, Snapshot};
