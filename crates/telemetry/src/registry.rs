//! Metric registry: per-metric, per-end-system histogram series and
//! snapshot emission.
//!
//! This file is the audit's R5 ground truth: every [`MetricId`] variant
//! must appear in [`MetricId::ALL`] (so [`MetricRegistry::snapshot`]
//! exports it even when empty), carry its snapshot label here, and be
//! recorded by at least one instrumentation site elsewhere in the
//! workspace. `stsl-audit` cross-checks all three against its
//! `METRIC_IDS` table.

use std::collections::BTreeMap;

use crate::histogram::Histogram;

/// The registered metrics. Values are `u64` microseconds except
/// [`MetricId::QueueDepth`], which counts queued batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MetricId {
    /// Activation-message delivery latency, end-system → server.
    UplinkLatency,
    /// Gradient-message delivery latency, server → end-system.
    DownlinkLatency,
    /// Arrival-queue depth sampled after each enqueue.
    QueueDepth,
    /// Age of a batch when the scheduler hands it to the server (staleness
    /// at apply time).
    GradientStaleness,
    /// Server batch service time.
    ServiceTime,
    /// Active + suspect member count, sampled at each membership
    /// transition (a count, not microseconds).
    MembershipSize,
    /// Cumulative batches shed by the bounded ingress queue, sampled at
    /// each telemetry snapshot (a count, not microseconds).
    ShedRate,
    /// Cumulative updates refused or flagged by the defense layer
    /// (ingress anomalies, quarantine drops and robust-aggregation
    /// outliers), sampled at each telemetry snapshot when robust
    /// aggregation is active (a count, not microseconds).
    RejectedUpdateRate,
    /// Per-window trim fraction of the robust aggregation policy, in
    /// permille of the window, recorded at each window apply (a ratio,
    /// not microseconds).
    TrimFraction,
    /// Live end-systems sharing one cohort model replica, sampled per
    /// cohort at each fleet snapshot (a count, not microseconds). Keyed
    /// by cohort id, not end-system id, so fleet snapshots stay O(cohorts).
    CohortSize,
}

impl MetricId {
    /// Every registered metric, in export order. `snapshot` iterates this
    /// array, so a variant missing here would silently vanish from every
    /// export — the audit's R5 rule exists to make that impossible.
    pub const ALL: [MetricId; 10] = [
        MetricId::UplinkLatency,
        MetricId::DownlinkLatency,
        MetricId::QueueDepth,
        MetricId::GradientStaleness,
        MetricId::ServiceTime,
        MetricId::MembershipSize,
        MetricId::ShedRate,
        MetricId::RejectedUpdateRate,
        MetricId::TrimFraction,
        MetricId::CohortSize,
    ];

    /// Stable snake_case label used in snapshot export.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricId::UplinkLatency => "uplink_latency_us",
            MetricId::DownlinkLatency => "downlink_latency_us",
            MetricId::QueueDepth => "queue_depth",
            MetricId::GradientStaleness => "gradient_staleness_us",
            MetricId::ServiceTime => "service_time_us",
            MetricId::MembershipSize => "membership_size",
            MetricId::ShedRate => "shed_rate",
            MetricId::RejectedUpdateRate => "rejected_update_rate",
            MetricId::TrimFraction => "trim_fraction",
            MetricId::CohortSize => "cohort_size",
        }
    }
}

/// Quantile readout of one end-system's histogram at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActorSeries {
    /// End-system index (the server uses the index one past the clients).
    /// `u64` so fleet-scale ids are never truncated or aliased.
    pub actor: u64,
    /// Samples recorded.
    pub count: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
}

/// One metric's per-end-system series at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSnapshot {
    /// Which metric.
    pub metric: MetricId,
    /// Per-end-system readouts, ascending by actor (empty if the metric
    /// recorded nothing yet).
    pub series: Vec<ActorSeries>,
}

/// A point-in-time export of every registered metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Simulation time of emission, microseconds.
    pub at_us: u64,
    /// 0-based emission sequence number.
    pub seq: u64,
    /// One entry per [`MetricId::ALL`] element, in that order.
    pub metrics: Vec<MetricSnapshot>,
}

impl Snapshot {
    /// Render as deterministic compact JSON (fixed key order, no floats).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"at_us\":{},\"seq\":{},\"metrics\":[",
            self.at_us, self.seq
        );
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"metric\":\"{}\",\"series\":[",
                m.metric.as_str()
            ));
            for (j, s) in m.series.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"actor\":{},\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
                    s.actor, s.count, s.p50, s.p90, s.p99, s.max
                ));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// Per-metric, per-end-system histogram store.
///
/// Both levels are `BTreeMap`s: iteration order (and therefore snapshot
/// and export byte order) is fully determined by the recorded keys, never
/// by insertion order or hashing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricRegistry {
    series: BTreeMap<MetricId, BTreeMap<u64, Histogram>>,
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample for `(metric, actor)`.
    pub fn record(&mut self, metric: MetricId, actor: u64, value: u64) {
        self.series
            .entry(metric)
            .or_default()
            .entry(actor)
            .or_default()
            .record(value);
    }

    /// The histogram for `(metric, actor)`, if anything was recorded.
    pub fn histogram(&self, metric: MetricId, actor: u64) -> Option<&Histogram> {
        self.series.get(&metric).and_then(|m| m.get(&actor))
    }

    /// Merge every `(metric, actor)` histogram of `other` into this
    /// registry (element-wise, order-independent).
    pub fn merge(&mut self, other: &MetricRegistry) {
        for (metric, actors) in &other.series {
            let mine = self.series.entry(*metric).or_default();
            for (actor, hist) in actors {
                mine.entry(*actor).or_default().merge(hist);
            }
        }
    }

    /// Emit a snapshot of **every** metric in [`MetricId::ALL`] —
    /// registered-but-silent metrics appear with an empty series rather
    /// than disappearing.
    pub fn snapshot(&self, at_us: u64, seq: u64) -> Snapshot {
        let metrics = MetricId::ALL
            .iter()
            .map(|&metric| MetricSnapshot {
                metric,
                series: self
                    .series
                    .get(&metric)
                    .map(|actors| {
                        actors
                            .iter()
                            .map(|(&actor, h)| ActorSeries {
                                actor,
                                count: h.count(),
                                p50: h.p50(),
                                p90: h.p90(),
                                p99: h.p99(),
                                max: h.max().unwrap_or(0),
                            })
                            .collect()
                    })
                    .unwrap_or_default(),
            })
            .collect();
        Snapshot {
            at_us,
            seq,
            metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_exports_every_registered_metric() {
        let reg = MetricRegistry::new();
        let snap = reg.snapshot(0, 0);
        assert_eq!(snap.metrics.len(), MetricId::ALL.len());
        for (m, id) in snap.metrics.iter().zip(MetricId::ALL) {
            assert_eq!(m.metric, id);
            assert!(m.series.is_empty());
        }
    }

    #[test]
    fn record_and_read_back() {
        let mut reg = MetricRegistry::new();
        reg.record(MetricId::UplinkLatency, 1, 5_000);
        reg.record(MetricId::UplinkLatency, 1, 9_000);
        reg.record(MetricId::UplinkLatency, 0, 100);
        let snap = reg.snapshot(42, 3);
        assert_eq!(snap.at_us, 42);
        assert_eq!(snap.seq, 3);
        let uplink = &snap.metrics[0];
        assert_eq!(uplink.metric, MetricId::UplinkLatency);
        assert_eq!(uplink.series.len(), 2);
        assert_eq!(uplink.series[0].actor, 0);
        assert_eq!(uplink.series[0].count, 1);
        assert_eq!(uplink.series[1].actor, 1);
        assert_eq!(uplink.series[1].count, 2);
        assert_eq!(uplink.series[1].max, 9_000);
    }

    #[test]
    fn snapshot_json_is_stable() {
        let mut reg = MetricRegistry::new();
        reg.record(MetricId::QueueDepth, 0, 2);
        let json = reg.snapshot(10, 0).to_json();
        assert!(json.starts_with("{\"at_us\":10,\"seq\":0,\"metrics\":["));
        assert!(json.contains(
            "{\"metric\":\"queue_depth\",\"series\":[{\"actor\":0,\"count\":1,\"p50\":2,\"p90\":2,\"p99\":2,\"max\":2}]}"
        ));
        // Every registered metric appears, even the silent ones.
        for id in MetricId::ALL {
            assert!(json.contains(id.as_str()), "{} missing", id.as_str());
        }
    }

    #[test]
    fn merge_combines_registries() {
        let mut a = MetricRegistry::new();
        let mut b = MetricRegistry::new();
        a.record(MetricId::ServiceTime, 0, 10);
        b.record(MetricId::ServiceTime, 0, 20);
        b.record(MetricId::GradientStaleness, 3, 7);
        a.merge(&b);
        assert_eq!(a.histogram(MetricId::ServiceTime, 0).unwrap().count(), 2);
        assert_eq!(
            a.histogram(MetricId::GradientStaleness, 3).unwrap().count(),
            1
        );
    }

    #[test]
    fn metric_labels_are_unique() {
        for (i, a) in MetricId::ALL.iter().enumerate() {
            for b in &MetricId::ALL[i + 1..] {
                assert_ne!(a.as_str(), b.as_str());
            }
        }
    }
}
