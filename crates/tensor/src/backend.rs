//! Compute-backend selection for the hot kernels.
//!
//! Every hot kernel in this crate (the GEMM family, and through it the
//! im2col convolution, plus the softmax/reduction family) exists twice:
//!
//! * [`Backend::Reference`] — the scalar reference path. It preserves the
//!   exact per-element summation order the workspace has always used, so
//!   it is the numeric **oracle**: anything the blocked backend computes
//!   is validated against it by `tests/kernel_conformance.rs`.
//! * [`Backend::Blocked`] — cache-blocked packed microkernels whose inner
//!   loops are written to auto-vectorize, partitioned over microtiles for
//!   the `stsl-parallel` pool. Where blocking reorders a floating-point
//!   accumulation the result is *not* bitwise equal to the reference;
//!   the conformance suite asserts the documented error bound instead
//!   (see DESIGN.md §12 for the equivalence policy).
//!
//! # Selection
//!
//! Resolution order, per kernel call:
//!
//! 1. a scope override installed by [`with_backend`] — propagated into
//!    `stsl-parallel` worker threads, so a test that pins the backend
//!    around a whole trainer run pins it for every nested kernel too;
//! 2. the `STSL_BACKEND` environment variable (`blocked`/`simd` or
//!    `reference`/`scalar`; an unparsable value falls back to the exact
//!    reference path, mirroring how `STSL_THREADS` falls back to serial);
//! 3. the default: [`Backend::Blocked`].
//!
//! # Determinism
//!
//! Backend choice is **explicit state**, never host sniffing: there is no
//! runtime CPU-feature detection (stsl-audit bans it in this crate), so a
//! given `(backend, seed)` pair reproduces bit-for-bit on any machine.
//! Within each backend, results are bitwise identical for every
//! `STSL_THREADS` value — the same contract the workspace has always had,
//! now enforced per backend by `tests/parallel_equivalence.rs`.

/// Which kernel family services tensor ops on this thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Scalar reference kernels: today's exact summation order, the
    /// conformance oracle.
    Reference,
    /// Cache-blocked packed microkernels tuned for auto-vectorization.
    #[default]
    Blocked,
}

/// Scope-context bit pattern for a pinned reference backend.
const CTX_REFERENCE: u64 = 1;
/// Scope-context bit pattern for a pinned blocked backend.
const CTX_BLOCKED: u64 = 2;
/// Mask of the scope-context bits owned by backend selection.
const CTX_MASK: u64 = 0b11;

impl Backend {
    /// The backend kernels must dispatch to on this thread, resolved as
    /// documented at the [module level](self).
    pub fn active() -> Backend {
        match stsl_parallel::scope_context() & CTX_MASK {
            CTX_REFERENCE => Backend::Reference,
            CTX_BLOCKED => Backend::Blocked,
            _ => Self::from_env(),
        }
    }

    /// Parses a backend name: `reference`/`scalar` or `blocked`/`simd`
    /// (ASCII case-insensitive).
    pub fn parse(name: &str) -> Option<Backend> {
        match name.trim().to_ascii_lowercase().as_str() {
            "reference" | "scalar" => Some(Backend::Reference),
            "blocked" | "simd" => Some(Backend::Blocked),
            _ => None,
        }
    }

    /// Stable lower-case name, the spelling `STSL_BACKEND` accepts and
    /// the bench envelopes report.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Reference => "reference",
            Backend::Blocked => "blocked",
        }
    }

    /// Environment-level selection: `STSL_BACKEND`, else the default.
    /// Unparsable values resolve to the exact reference path.
    fn from_env() -> Backend {
        match std::env::var("STSL_BACKEND") {
            Ok(v) => Backend::parse(&v).unwrap_or(Backend::Reference),
            Err(_) => Backend::default(),
        }
    }
}

/// Runs `f` with the compute backend pinned to `backend`, restoring the
/// previous selection afterwards (including on panic).
///
/// The pin rides the `stsl-parallel` scope context, so it survives into
/// every worker thread a parallel kernel inside `f` spawns — a trainer
/// fan-out over end-systems dispatches the pinned backend on all of them.
pub fn with_backend<R>(backend: Backend, f: impl FnOnce() -> R) -> R {
    let bits = match backend {
        Backend::Reference => CTX_REFERENCE,
        Backend::Blocked => CTX_BLOCKED,
    };
    let ctx = (stsl_parallel::scope_context() & !CTX_MASK) | bits;
    stsl_parallel::with_scope_context(ctx, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_both_spellings() {
        assert_eq!(Backend::parse("reference"), Some(Backend::Reference));
        assert_eq!(Backend::parse("SCALAR"), Some(Backend::Reference));
        assert_eq!(Backend::parse(" blocked "), Some(Backend::Blocked));
        assert_eq!(Backend::parse("simd"), Some(Backend::Blocked));
        assert_eq!(Backend::parse("gpu"), None);
        assert_eq!(Backend::parse(""), None);
    }

    #[test]
    fn names_round_trip() {
        for b in [Backend::Reference, Backend::Blocked] {
            assert_eq!(Backend::parse(b.name()), Some(b));
        }
    }

    #[test]
    fn with_backend_pins_and_restores() {
        let outer = Backend::active();
        with_backend(Backend::Reference, || {
            assert_eq!(Backend::active(), Backend::Reference);
            with_backend(Backend::Blocked, || {
                assert_eq!(Backend::active(), Backend::Blocked);
            });
            assert_eq!(Backend::active(), Backend::Reference);
        });
        assert_eq!(Backend::active(), outer);
    }

    #[test]
    fn with_backend_reaches_pool_workers() {
        stsl_parallel::with_threads(4, || {
            with_backend(Backend::Reference, || {
                let seen = stsl_parallel::par_map_indexed(
                    6,
                    stsl_parallel::ChunkPolicy::min_chunk(1),
                    |_| Backend::active(),
                );
                assert_eq!(seen, vec![Backend::Reference; 6]);
            });
        });
    }
}
