//! Error type for fallible tensor operations.

use crate::Shape;
use std::error::Error as StdError;
use std::fmt;

/// Error returned by fallible tensor operations.
///
/// Most tensor kernels have panicking fast paths (shape mismatches are
/// programming errors in training loops), but the `try_`-prefixed entry
/// points return this instead, which is what library layers should use when
/// shapes come from untrusted configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands could not be broadcast together.
    BroadcastMismatch {
        /// Left operand shape.
        lhs: Shape,
        /// Right operand shape.
        rhs: Shape,
    },
    /// A reshape was requested to a shape of different total length.
    LengthMismatch {
        /// Shape of the source tensor.
        from: Shape,
        /// Requested shape.
        to: Shape,
    },
    /// An axis argument exceeded the tensor rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// Rank of the tensor.
        rank: usize,
    },
    /// A matrix/convolution kernel received incompatible operand shapes.
    IncompatibleShapes {
        /// Human-readable description of the constraint that failed.
        reason: String,
    },
    /// Raw element data did not match the declared shape.
    DataLengthMismatch {
        /// Number of elements supplied.
        got: usize,
        /// Number of elements the shape requires.
        expected: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::BroadcastMismatch { lhs, rhs } => {
                write!(f, "cannot broadcast {} with {}", lhs, rhs)
            }
            TensorError::LengthMismatch { from, to } => write!(
                f,
                "cannot reshape {} ({} elements) to {} ({} elements)",
                from,
                from.len(),
                to,
                to.len()
            ),
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {} out of range for rank {}", axis, rank)
            }
            TensorError::IncompatibleShapes { reason } => {
                write!(f, "incompatible shapes: {}", reason)
            }
            TensorError::DataLengthMismatch { got, expected } => {
                write!(
                    f,
                    "data length {} does not match shape length {}",
                    got, expected
                )
            }
        }
    }
}

impl StdError for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let e = TensorError::AxisOutOfRange { axis: 5, rank: 2 };
        let msg = e.to_string();
        assert!(msg.starts_with("axis"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
