//! Seeded random tensor construction and weight-initialization schemes.
//!
//! All randomness in the workspace flows from explicit `u64` seeds so every
//! experiment is bit-reproducible; nothing here reads OS entropy.

use crate::{Shape, Tensor};
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from a seed.
///
/// This is the single entry point the rest of the workspace uses to obtain
/// randomness, making provenance greppable.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream index.
///
/// Used to give each end-system / data shard / layer an independent but
/// reproducible random stream. Uses SplitMix64 finalization so nearby inputs
/// map to uncorrelated outputs.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Tensor {
    /// Samples i.i.d. standard-normal elements.
    pub fn randn(shape: impl Into<Shape>, rng: &mut StdRng) -> Tensor {
        let shape = shape.into();
        let len = shape.len();
        let mut data = Vec::with_capacity(len);
        // Box-Muller: two uniforms -> two normals. Avoids a dependency on
        // rand_distr, which is not in the approved crate set.
        while data.len() < len {
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen::<f64>();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            data.push((r * theta.cos()) as f32);
            if data.len() < len {
                data.push((r * theta.sin()) as f32);
            }
        }
        Tensor::from_vec(data, shape)
    }

    /// Samples i.i.d. elements uniform in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn rand_uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut StdRng) -> Tensor {
        assert!(lo < hi, "uniform range must be non-empty: [{}, {})", lo, hi);
        let shape = shape.into();
        let len = shape.len();
        let dist = Uniform::new(lo, hi);
        let data = (0..len).map(|_| dist.sample(rng)).collect();
        Tensor::from_vec(data, shape)
    }

    /// He (Kaiming) normal initialization: `N(0, sqrt(2 / fan_in))`.
    ///
    /// The right choice before ReLU nonlinearities — used for all conv and
    /// hidden dense layers of the paper's CNN.
    pub fn he_normal(shape: impl Into<Shape>, fan_in: usize, rng: &mut StdRng) -> Tensor {
        let std = (2.0 / fan_in.max(1) as f32).sqrt();
        let mut t = Tensor::randn(shape, rng);
        t.scale_inplace(std);
        t
    }

    /// Xavier (Glorot) uniform initialization:
    /// `U(-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out)))`.
    pub fn xavier_uniform(
        shape: impl Into<Shape>,
        fan_in: usize,
        fan_out: usize,
        rng: &mut StdRng,
    ) -> Tensor {
        let limit = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
        Tensor::rand_uniform(shape, -limit, limit, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn randn_is_deterministic_per_seed() {
        let a = Tensor::randn([32], &mut rng_from_seed(7));
        let b = Tensor::randn([32], &mut rng_from_seed(7));
        let c = Tensor::randn([32], &mut rng_from_seed(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn randn_moments_are_plausible() {
        let t = Tensor::randn([10_000], &mut rng_from_seed(1));
        let mean: f32 = t.as_slice().iter().sum::<f32>() / t.len() as f32;
        let var: f32 = t
            .as_slice()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / t.len() as f32;
        assert!(mean.abs() < 0.05, "mean {} too far from 0", mean);
        assert!((var - 1.0).abs() < 0.1, "variance {} too far from 1", var);
    }

    #[test]
    fn randn_odd_length() {
        let t = Tensor::randn([7], &mut rng_from_seed(3));
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn uniform_respects_bounds() {
        let t = Tensor::rand_uniform([1000], -0.5, 0.25, &mut rng_from_seed(2));
        assert!(t.as_slice().iter().all(|&x| (-0.5..0.25).contains(&x)));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn uniform_rejects_inverted_range() {
        Tensor::rand_uniform([4], 1.0, 1.0, &mut rng_from_seed(0));
    }

    #[test]
    fn he_normal_scales_variance_by_fan_in() {
        let t = Tensor::he_normal([20_000], 50, &mut rng_from_seed(5));
        let var: f32 = t.sq_norm() / t.len() as f32;
        let expected = 2.0 / 50.0;
        assert!(
            (var - expected).abs() < expected * 0.15,
            "variance {} vs expected {}",
            var,
            expected
        );
    }

    #[test]
    fn xavier_uniform_respects_limit() {
        let limit = (6.0f32 / 300.0).sqrt();
        let t = Tensor::xavier_uniform([5000], 100, 200, &mut rng_from_seed(6));
        assert!(t.as_slice().iter().all(|&x| x.abs() <= limit));
    }

    #[test]
    fn derive_seed_decorrelates_streams() {
        let s0 = derive_seed(42, 0);
        let s1 = derive_seed(42, 1);
        let s2 = derive_seed(43, 0);
        assert_ne!(s0, s1);
        assert_ne!(s0, s2);
        // Stable across calls.
        assert_eq!(s0, derive_seed(42, 0));
    }
}
