//! Dense `f32` tensors and the numeric kernels needed to train the paper's
//! CNN from scratch: broadcasting elementwise ops, reductions, blocked
//! GEMM, im2col convolution and max pooling, each with hand-written
//! backward passes validated against finite differences.
//!
//! This crate is the numerical substrate for the
//! `spatio-temporal-split-learning` workspace. It has no unsafe code and no
//! dependencies beyond `rand` (seeded initialization) and `serde`
//! (checkpoints). Everything is deterministic given a seed.
//!
//! # Examples
//!
//! ```
//! use stsl_tensor::{Tensor, ops::conv::{conv2d_forward, ConvSpec}};
//! use stsl_tensor::init::rng_from_seed;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rng_from_seed(0);
//! let image = Tensor::randn([1, 3, 32, 32], &mut rng);     // NCHW
//! let kernel = Tensor::he_normal([16, 3, 3, 3], 27, &mut rng);
//! let bias = Tensor::zeros([16]);
//! let out = conv2d_forward(&image, &kernel, &bias, ConvSpec::same(3))?;
//! assert_eq!(out.output.dims(), &[1, 16, 32, 32]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
mod error;
pub mod init;
pub mod ops;
mod shape;
mod tensor;

pub use backend::{with_backend, Backend};
pub use error::TensorError;
pub use ops::reduce::{mean_f32, sum_f32, sum_f64, sum_sq_f64};
pub use shape::Shape;
pub use tensor::Tensor;
