//! Cache-blocked packed GEMM microkernels — the [`Backend::Blocked`]
//! implementation of the matmul family.
//!
//! The layout follows the classic BLIS/GotoBLAS decomposition, reduced to
//! what safe Rust auto-vectorizes well:
//!
//! * `B` is packed once per call into `NR`-wide column strips, k-major
//!   inside each strip, zero-padded on the ragged edge. Each microkernel
//!   iteration then reads one contiguous `NR`-float row.
//! * `A` is packed per `MC×KC` block into `MR`-tall row strips, k-major,
//!   so the microkernel reads one contiguous `MR`-float column per step.
//! * The microkernel keeps an `MR×NR` accumulator array in registers and
//!   walks `k` ascending; LLVM turns the fixed-bound inner loops into
//!   plain SIMD mul/add chains (no fast-math, no intrinsics, no unsafe).
//!
//! # Determinism
//!
//! Work is partitioned over **microtile-aligned bands** of output rows
//! ([`stsl_parallel::ChunkPolicy::tiles`]), and each output element
//! accumulates its `k` terms in ascending order within each `KC` panel,
//! with panels applied in ascending order — a fixed association that does
//! not depend on where band or block boundaries fall. Results are
//! therefore bitwise identical for every `STSL_THREADS` value.
//!
//! Relative to the scalar reference backend the association *does*
//! differ (panel partial sums are accumulated in registers before being
//! added to `C`, and `alpha` is applied to the panel sum rather than to
//! each term), so blocked results are ULP-bounded against the reference,
//! not bitwise equal. `tests/kernel_conformance.rs` asserts the bound.

use stsl_parallel::{par_chunks_mut, ChunkPolicy};

/// Rows per microtile (the microkernel's register-block height).
pub(crate) const MR: usize = 4;
/// Columns per microtile (two SSE vectors; the accumulator is MR×NR).
pub(crate) const NR: usize = 8;
/// k-panel depth: one packed A strip of `MR * KC` floats is 4 KiB.
const KC: usize = 256;
/// Row-block height per A pack (MC×KC floats = 64 KiB, L2-resident).
const MC: usize = 64;
/// Minimum multiply-adds worth handing to a thread (matches the
/// reference path's grain so small problems stay on the caller).
const PAR_GRAIN: usize = 1 << 14;

/// How one logical GEMM operand is stored.
#[derive(Clone, Copy)]
pub(crate) enum Layout {
    /// Row-major as written: logical `(r, c)` at `data[r * cols + c]`.
    Normal,
    /// Transposed storage: logical `(r, c)` at `data[c * rows + r]`.
    Trans,
}

/// Reads logical `A[i, kk]` for an `m×k` logical matrix.
#[inline]
fn a_at(a: &[f32], layout: Layout, i: usize, kk: usize, m: usize, k: usize) -> f32 {
    match layout {
        Layout::Normal => a[i * k + kk],
        Layout::Trans => {
            let _ = m;
            a[kk * m + i]
        }
    }
}

/// Packs all of `B` into `NR`-wide strips, k-major within each strip,
/// zero-padded to a whole strip on the right edge. Strip `js` occupies
/// `bpack[js * k * NR ..][.. k * NR]`; row `kk` of that strip is the
/// contiguous `NR` floats `B[kk, js*NR .. js*NR+NR]`.
///
/// Pure indexed writes, so the strip-parallel fill is partition-invariant.
fn pack_b(b: &[f32], layout: Layout, k: usize, n: usize) -> Vec<f32> {
    let strips = n.div_ceil(NR);
    let mut bpack = vec![0.0f32; strips * k * NR];
    if bpack.is_empty() {
        return bpack;
    }
    let strip_len = k * NR;
    let policy = ChunkPolicy::min_chunk((PAR_GRAIN / strip_len.max(1)).max(1));
    par_chunks_mut(&mut bpack, strip_len, policy, |js0, band| {
        for (si, strip) in band.chunks_mut(strip_len).enumerate() {
            let j0 = (js0 + si) * NR;
            let width = NR.min(n - j0);
            match layout {
                Layout::Normal => {
                    for kk in 0..k {
                        let src = &b[kk * n + j0..kk * n + j0 + width];
                        strip[kk * NR..kk * NR + width].copy_from_slice(src);
                    }
                }
                Layout::Trans => {
                    // b is n×k; strip lane jj is column j0+jj, i.e. row
                    // j0+jj of the stored matrix, walked along k.
                    for jj in 0..width {
                        let src = &b[(j0 + jj) * k..(j0 + jj + 1) * k];
                        for (kk, &v) in src.iter().enumerate() {
                            strip[kk * NR + jj] = v;
                        }
                    }
                }
            }
        }
    });
    bpack
}

/// Packs rows `i0..i0+rows` × columns `k0..k0+kc` of logical `A` into
/// `MR`-tall strips, k-major, zero-padding the ragged bottom strip.
/// Strip `is` holds rows `i0 + is*MR ..`; step `kk` of a strip is the
/// contiguous `MR` floats `A[rows of strip, k0+kk]`.
#[allow(clippy::too_many_arguments)] // BLAS-style shape/offset scalars
fn pack_a(
    apack: &mut Vec<f32>,
    a: &[f32],
    layout: Layout,
    m: usize,
    k: usize,
    i0: usize,
    rows: usize,
    k0: usize,
    kc: usize,
) {
    let strips = rows.div_ceil(MR);
    apack.clear();
    apack.resize(strips * kc * MR, 0.0);
    for is in 0..strips {
        let r0 = i0 + is * MR;
        let height = MR.min(i0 + rows - r0);
        let strip = &mut apack[is * kc * MR..(is + 1) * kc * MR];
        for kk in 0..kc {
            for r in 0..height {
                strip[kk * MR + r] = a_at(a, layout, r0 + r, k0 + kk, m, k);
            }
        }
    }
}

/// The register microkernel: accumulates a `kc`-deep panel product of one
/// packed A strip and one packed B strip, then folds `alpha * acc` into a
/// full `MR × NR` tile of `c` (row stride `ldc`). `ap` is `kc*MR` floats,
/// `bp` is `kc*NR` floats, and `c` must cover the whole tile — ragged
/// edges go through [`microkernel_edge`].
///
/// Two details here are load-bearing for codegen, each worth ~2×:
///
/// * `inline(never)`: compiled standalone, LLVM keeps the whole `MR×NR`
///   accumulator in SIMD registers; inlined into the blocking loops it
///   inherits their register pressure and spills accumulators on every
///   `k` step. The call cost is amortized over `kc·MR·NR` multiply-adds.
/// * The writeback loops have **constant** bounds (`MR`, `NR`). Any
///   dynamically-bounded read of `acc` (as the edge case needs) defeats
///   SROA, the accumulator becomes a stack object, and the hot `k` loop
///   round-trips it through memory each iteration.
#[inline(never)]
fn microkernel(ap: &[f32], bp: &[f32], kc: usize, c: &mut [f32], ldc: usize, alpha: f32) {
    let mut acc = [[0.0f32; NR]; MR];
    for (arow, brow) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(kc) {
        for r in 0..MR {
            let ar = arow[r];
            for j in 0..NR {
                acc[r][j] += ar * brow[j];
            }
        }
    }
    for r in 0..MR {
        let crow = &mut c[r * ldc..r * ldc + NR];
        for j in 0..NR {
            crow[j] += alpha * acc[r][j];
        }
    }
}

/// Ragged-edge wrapper: runs [`microkernel`] into a zeroed `MR×NR`
/// scratch tile (`alpha = 1`, so scratch holds the raw panel sums), then
/// folds `alpha * sum` into the valid `mr_eff × nr_eff` corner of `c` —
/// the same `c += alpha · panel_sum` association as the full-tile path,
/// so edge elements are bitwise independent of which path handled them.
#[allow(clippy::too_many_arguments)] // BLAS-style shape/offset scalars
fn microkernel_edge(
    ap: &[f32],
    bp: &[f32],
    kc: usize,
    c: &mut [f32],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
    alpha: f32,
) {
    let mut scratch = [0.0f32; MR * NR];
    microkernel(ap, bp, kc, &mut scratch, NR, 1.0);
    for r in 0..mr_eff {
        let crow = &mut c[r * ldc..r * ldc + nr_eff];
        for (j, cv) in crow.iter_mut().enumerate() {
            *cv += alpha * scratch[r * NR + j];
        }
    }
}

/// `C += alpha * A · B` with packed blocked microkernels; `C` is `m×n`
/// row-major, logical `A` is `m×k`, logical `B` is `k×n` (storage per
/// `Layout`).
#[allow(clippy::too_many_arguments)] // BLAS-style shape/offset scalars
pub(crate) fn gemm_core(
    a: &[f32],
    a_layout: Layout,
    b: &[f32],
    b_layout: Layout,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
) {
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        // k == 0 is an empty sum: C += alpha·0 leaves C untouched, same
        // as the reference loops simply not executing.
        return;
    }
    let bpack = pack_b(b, b_layout, k, n);
    let strips = n.div_ceil(NR);
    // One band per thread, boundaries on microtile edges so no MR-tile is
    // split across threads; the work grain matches the reference path.
    let min_rows = (PAR_GRAIN / (k * n)).max(1);
    let policy = ChunkPolicy::tiles(min_rows.max(MR), MR);
    par_chunks_mut(c, n, policy, |row0, band| {
        let rows = band.len() / n;
        let mut apack = Vec::new();
        for ic in (0..rows).step_by(MC) {
            let ic_len = MC.min(rows - ic);
            for k0 in (0..k).step_by(KC) {
                let kc = KC.min(k - k0);
                pack_a(&mut apack, a, a_layout, m, k, row0 + ic, ic_len, k0, kc);
                for js in 0..strips {
                    let bp = &bpack[js * k * NR + k0 * NR..][..kc * NR];
                    let j0 = js * NR;
                    let nr_eff = NR.min(n - j0);
                    for (is, ap) in apack.chunks_exact(kc * MR).enumerate() {
                        let ir = ic + is * MR;
                        let mr_eff = MR.min(rows - ir).min(ic_len - is * MR);
                        let ctile = &mut band[ir * n + j0..];
                        if mr_eff == MR && nr_eff == NR {
                            microkernel(ap, bp, kc, ctile, n, alpha);
                        } else {
                            microkernel_edge(ap, bp, kc, ctile, n, mr_eff, nr_eff, alpha);
                        }
                    }
                }
            }
        }
    });
}

/// Blocked `C += alpha * A · B` (row-major `m×k` times `k×n`).
pub(crate) fn gemm_into(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
) {
    gemm_core(a, Layout::Normal, b, Layout::Normal, c, m, k, n, alpha);
}

/// Blocked `C = Aᵀ · B` where `a` is stored `k×m`.
pub(crate) fn gemm_at_b(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    gemm_core(a, Layout::Trans, b, Layout::Normal, &mut c, m, k, n, 1.0);
    c
}

/// Blocked `C = A · Bᵀ` where `b` is stored `n×k`.
pub(crate) fn gemm_a_bt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    gemm_core(a, Layout::Normal, b, Layout::Trans, &mut c, m, k, n, 1.0);
    c
}

/// Fixed-order lane-parallel sum: eight running partial sums over the
/// slice, combined pairwise, remainder appended last. The association is
/// a function of `xs.len()` alone — never of thread count — so it is
/// deterministic, but it differs from the reference left-fold and is
/// ULP-bounded against it.
pub(crate) fn sum_lanes(xs: &[f32]) -> f32 {
    const LANES: usize = 8;
    let mut acc = [0.0f32; LANES];
    let chunks = xs.chunks_exact(LANES);
    let rem = chunks.remainder();
    for ch in chunks {
        for (j, a) in acc.iter_mut().enumerate() {
            *a += ch[j];
        }
    }
    let mut tail = 0.0f32;
    for &v in rem {
        tail += v;
    }
    let front = (acc[0] + acc[4]) + (acc[1] + acc[5]);
    let back = (acc[2] + acc[6]) + (acc[3] + acc[7]);
    (front + back) + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f64; m * n];
        for i in 0..m {
            for kk in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + kk] as f64 * b[kk * n + j] as f64;
                }
            }
        }
        c.into_iter().map(|v| v as f32).collect()
    }

    fn seq(len: usize, scale: f32) -> Vec<f32> {
        (0..len)
            .map(|i| ((i * 7 % 13) as f32 - 6.0) * scale)
            .collect()
    }

    #[test]
    fn blocked_gemm_matches_f64_naive_on_awkward_shapes() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 2),
            (4, 8, 8),
            (5, 9, 11),
            (17, 300, 7),
            (70, 1, 70),
            (65, 64, 63),
        ] {
            let a = seq(m * k, 0.25);
            let b = seq(k * n, 0.5);
            let mut c = vec![0.0f32; m * n];
            gemm_into(&a, &b, &mut c, m, k, n, 1.0);
            let want = naive(&a, &b, m, k, n);
            for (got, want) in c.iter().zip(&want) {
                assert!(
                    (got - want).abs() <= 1e-3 * (1.0 + want.abs()),
                    "({m},{k},{n}): {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn blocked_transposed_variants_agree_with_normal() {
        let (m, k, n) = (9usize, 13usize, 10usize);
        let a = seq(m * k, 0.1);
        let b = seq(k * n, 0.2);
        let mut c = vec![0.0f32; m * n];
        gemm_into(&a, &b, &mut c, m, k, n, 1.0);

        // Build transposed storages and check the *_at_b / *_a_bt entry
        // points recover the same product (identical association, so
        // bitwise equality is expected).
        let mut at = vec![0.0f32; k * m];
        for i in 0..m {
            for kk in 0..k {
                at[kk * m + i] = a[i * k + kk];
            }
        }
        let mut bt = vec![0.0f32; n * k];
        for kk in 0..k {
            for j in 0..n {
                bt[j * k + kk] = b[kk * n + j];
            }
        }
        assert_eq!(gemm_at_b(&at, &b, m, k, n), c);
        assert_eq!(gemm_a_bt(&a, &bt, m, k, n), c);
    }

    #[test]
    fn k_zero_leaves_c_untouched() {
        let mut c = vec![3.0f32; 6];
        gemm_into(&[], &[], &mut c, 2, 0, 3, 1.0);
        assert_eq!(c, vec![3.0; 6]);
    }

    #[test]
    fn alpha_scales_the_panel_sum() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 4.0];
        let mut c = vec![10.0f32];
        gemm_into(&a, &b, &mut c, 1, 2, 1, 0.5);
        assert_eq!(c, vec![10.0 + 0.5 * 11.0]);
    }

    #[test]
    fn bitwise_identical_across_thread_counts() {
        use stsl_parallel::with_threads;
        let (m, k, n) = (67usize, 300usize, 41usize);
        let a = seq(m * k, 0.03);
        let b = seq(k * n, 0.07);
        let run = || {
            let mut c = vec![0.0f32; m * n];
            gemm_into(&a, &b, &mut c, m, k, n, 1.0);
            c
        };
        let serial = with_threads(1, run);
        for threads in [2usize, 3, 4, 7] {
            assert_eq!(serial, with_threads(threads, run), "{threads} threads");
        }
    }

    #[test]
    fn sum_lanes_is_exact_on_integers_and_handles_edges() {
        assert_eq!(sum_lanes(&[]), 0.0);
        assert_eq!(sum_lanes(&[2.5]), 2.5);
        let xs: Vec<f32> = (1..=25).map(|i| i as f32).collect();
        assert_eq!(sum_lanes(&xs), 325.0);
    }
}
