//! 2-D convolution via im2col + GEMM, with full backward passes.
//!
//! Layout conventions (identical throughout the workspace):
//! * activations: `NCHW` — `[batch, channels, height, width]`
//! * conv weights: `[out_channels, in_channels, kh, kw]`
//! * conv bias: `[out_channels]`

use crate::ops::matmul::{gemm, gemm_a_bt, gemm_at_b};
use crate::{Tensor, TensorError};
use stsl_parallel::{par_chunks_mut, ChunkPolicy};

/// Geometry of a convolution or pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvSpec {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Vertical and horizontal stride.
    pub stride: usize,
    /// Symmetric zero padding applied to each edge.
    pub pad: usize,
}

impl ConvSpec {
    /// A square kernel with stride 1 and "same" padding (output size equals
    /// input size for odd `k`). This is the Keras `padding="same"` setting
    /// the paper's CNN uses.
    pub fn same(k: usize) -> Self {
        ConvSpec {
            kh: k,
            kw: k,
            stride: 1,
            pad: k / 2,
        }
    }

    /// A square kernel with stride 1 and no padding (Keras `"valid"`).
    pub fn valid(k: usize) -> Self {
        ConvSpec {
            kh: k,
            kw: k,
            stride: 1,
            pad: 0,
        }
    }

    /// Output spatial size for an input of `(h, w)`.
    ///
    /// Returns `None` if the window does not fit even once.
    pub fn output_hw(&self, h: usize, w: usize) -> Option<(usize, usize)> {
        let eh = h + 2 * self.pad;
        let ew = w + 2 * self.pad;
        if eh < self.kh || ew < self.kw || self.stride == 0 {
            return None;
        }
        Some((
            (eh - self.kh) / self.stride + 1,
            (ew - self.kw) / self.stride + 1,
        ))
    }
}

/// Unfolds `input` (`[n, c, h, w]`) into a column matrix of shape
/// `[c*kh*kw, n*oh*ow]` where each column is one receptive field.
///
/// # Panics
///
/// Panics if the input is not rank 4 or the window does not fit.
pub fn im2col(input: &Tensor, spec: ConvSpec) -> Tensor {
    assert_eq!(
        input.rank(),
        4,
        "im2col requires NCHW input, got {}",
        input.shape()
    );
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let (oh, ow) = spec
        .output_hw(h, w)
        .expect("convolution window does not fit input");
    let ckk = c * spec.kh * spec.kw;
    let cols_n = n * oh * ow;
    let mut cols = vec![0.0f32; ckk * cols_n];
    let src = input.as_slice();
    // Each output row of the column matrix belongs to one (ci, ki, kj)
    // triple and is written by exactly one thread. The batch axis is not
    // contiguous in this layout ([ckk, n*oh*ow]), so the parallel unit is
    // the kernel-position row rather than the batch sample; writes are
    // pure (no accumulation), so any partition yields identical bits.
    if !cols.is_empty() {
        let policy = ChunkPolicy::min_chunk((4096 / cols_n.max(1)).max(1));
        par_chunks_mut(&mut cols, cols_n, policy, |row0, chunk| {
            for (ri, dst_row) in chunk.chunks_mut(cols_n).enumerate() {
                let row = row0 + ri;
                let ci = row / (spec.kh * spec.kw);
                let ki = row / spec.kw % spec.kh;
                let kj = row % spec.kw;
                for ni in 0..n {
                    let plane = &src[(ni * c + ci) * h * w..(ni * c + ci + 1) * h * w];
                    for oi in 0..oh {
                        let iy = (oi * spec.stride + ki) as isize - spec.pad as isize;
                        let dst_base = (ni * oh + oi) * ow;
                        if iy < 0 || iy >= h as isize {
                            continue; // stays zero (padding)
                        }
                        let src_base = iy as usize * w;
                        for oj in 0..ow {
                            let ix = (oj * spec.stride + kj) as isize - spec.pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            dst_row[dst_base + oj] = plane[src_base + ix as usize];
                        }
                    }
                }
            }
        });
    }
    Tensor::from_vec(cols, [ckk, cols_n])
}

/// Folds a column matrix back into an `[n, c, h, w]` image, accumulating
/// overlapping windows. Exact adjoint of [`im2col`].
///
/// # Panics
///
/// Panics if `cols` does not have shape `[c*kh*kw, n*oh*ow]`.
pub fn col2im(cols: &Tensor, n: usize, c: usize, h: usize, w: usize, spec: ConvSpec) -> Tensor {
    let (oh, ow) = spec
        .output_hw(h, w)
        .expect("convolution window does not fit input");
    let ckk = c * spec.kh * spec.kw;
    let cols_n = n * oh * ow;
    assert_eq!(cols.dims(), &[ckk, cols_n], "col2im shape mismatch");
    let src = cols.as_slice();
    let mut out = vec![0.0f32; n * c * h * w];
    // Batch-parallel: each thread folds a contiguous band of samples. A
    // sample's plane receives its overlapping-window sums in (ci, ki, kj,
    // oi, oj) ascending order — the same per-element order as a serial
    // sweep — so the accumulated floats are bitwise partition-invariant.
    if !out.is_empty() {
        par_chunks_mut(
            &mut out,
            c * h * w,
            ChunkPolicy::min_chunk(1),
            |ni0, band| {
                for (bi, sample) in band.chunks_mut(c * h * w).enumerate() {
                    let ni = ni0 + bi;
                    for ci in 0..c {
                        let plane = &mut sample[ci * h * w..(ci + 1) * h * w];
                        for ki in 0..spec.kh {
                            for kj in 0..spec.kw {
                                let row = (ci * spec.kh + ki) * spec.kw + kj;
                                let src_row = &src[row * cols_n..(row + 1) * cols_n];
                                for oi in 0..oh {
                                    let iy = (oi * spec.stride + ki) as isize - spec.pad as isize;
                                    if iy < 0 || iy >= h as isize {
                                        continue;
                                    }
                                    let src_base = (ni * oh + oi) * ow;
                                    let dst_base = iy as usize * w;
                                    for oj in 0..ow {
                                        let ix =
                                            (oj * spec.stride + kj) as isize - spec.pad as isize;
                                        if ix < 0 || ix >= w as isize {
                                            continue;
                                        }
                                        plane[dst_base + ix as usize] += src_row[src_base + oj];
                                    }
                                }
                            }
                        }
                    }
                }
            },
        );
    }
    Tensor::from_vec(out, [n, c, h, w])
}

/// Result of a convolution forward pass, retaining what backward needs.
#[derive(Debug, Clone)]
pub struct Conv2dForward {
    /// The output activations, `[n, out_c, oh, ow]`.
    pub output: Tensor,
    /// The unfolded input columns (kept for the weight gradient).
    pub cols: Tensor,
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient w.r.t. the input, `[n, in_c, h, w]`.
    pub dinput: Tensor,
    /// Gradient w.r.t. the weights, `[out_c, in_c, kh, kw]`.
    pub dweight: Tensor,
    /// Gradient w.r.t. the bias, `[out_c]`.
    pub dbias: Tensor,
}

/// Convolution forward pass: `output = weight ⊛ input + bias`.
///
/// # Errors
///
/// Returns [`TensorError::IncompatibleShapes`] if operand shapes disagree
/// with the spec.
pub fn conv2d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    spec: ConvSpec,
) -> Result<Conv2dForward, TensorError> {
    if input.rank() != 4 || weight.rank() != 4 {
        return Err(TensorError::IncompatibleShapes {
            reason: format!(
                "conv2d expects NCHW input and OIHW weight, got {} and {}",
                input.shape(),
                weight.shape()
            ),
        });
    }
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let (oc, ic, kh, kw) = (weight.dim(0), weight.dim(1), weight.dim(2), weight.dim(3));
    if ic != c || kh != spec.kh || kw != spec.kw {
        return Err(TensorError::IncompatibleShapes {
            reason: format!(
                "weight {} incompatible with input {} under {:?}",
                weight.shape(),
                input.shape(),
                spec
            ),
        });
    }
    if bias.dims() != [oc] {
        return Err(TensorError::IncompatibleShapes {
            reason: format!("bias {} must be [{}]", bias.shape(), oc),
        });
    }
    let (oh, ow) = spec
        .output_hw(h, w)
        .ok_or_else(|| TensorError::IncompatibleShapes {
            reason: format!("window {:?} does not fit input {}", spec, input.shape()),
        })?;
    let cols = im2col(input, spec);
    let ckk = c * kh * kw;
    let l = n * oh * ow;
    // [oc, ckk] · [ckk, l] -> [oc, l]
    let flat = gemm(weight.as_slice(), cols.as_slice(), oc, ckk, l);
    // Reorder [oc, (n, oh, ow)] -> [n, oc, oh, ow] and add bias, one batch
    // sample per parallel unit (pure writes, partition-invariant).
    let mut out = vec![0.0f32; n * oc * oh * ow];
    let bias_s = bias.as_slice();
    let hw = oh * ow;
    if !out.is_empty() {
        par_chunks_mut(&mut out, oc * hw, ChunkPolicy::min_chunk(1), |ni0, band| {
            for (bi, sample) in band.chunks_mut(oc * hw).enumerate() {
                let ni = ni0 + bi;
                for o in 0..oc {
                    let b = bias_s[o];
                    let src = &flat[o * l + ni * hw..o * l + (ni + 1) * hw];
                    let dst = &mut sample[o * hw..(o + 1) * hw];
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d = s + b;
                    }
                }
            }
        });
    }
    Ok(Conv2dForward {
        output: Tensor::from_vec(out, [n, oc, oh, ow]),
        cols,
    })
}

/// Convolution backward pass.
///
/// `dout` is the gradient w.r.t. the forward output (`[n, oc, oh, ow]`);
/// `cols` is the column matrix saved by [`conv2d_forward`].
///
/// # Panics
///
/// Panics if shapes disagree with the forward pass.
pub fn conv2d_backward(
    dout: &Tensor,
    cols: &Tensor,
    weight: &Tensor,
    input_dims: (usize, usize, usize, usize),
    spec: ConvSpec,
) -> Conv2dGrads {
    let (n, c, h, w) = input_dims;
    let (oc, _ic, kh, kw) = (weight.dim(0), weight.dim(1), weight.dim(2), weight.dim(3));
    let (oh, ow) = spec.output_hw(h, w).expect("window fits");
    assert_eq!(dout.dims(), &[n, oc, oh, ow], "dout shape mismatch");
    let hw = oh * ow;
    let l = n * hw;
    let ckk = c * kh * kw;
    // Reorder dout [n, oc, oh, ow] -> [oc, l] matching the forward layout;
    // one output-channel row per parallel unit (pure copies).
    let mut dflat = vec![0.0f32; oc * l];
    let ds = dout.as_slice();
    if !dflat.is_empty() {
        par_chunks_mut(&mut dflat, l, ChunkPolicy::min_chunk(1), |o0, band| {
            for (bi, dst_row) in band.chunks_mut(l).enumerate() {
                let o = o0 + bi;
                for ni in 0..n {
                    let src = &ds[(ni * oc + o) * hw..(ni * oc + o + 1) * hw];
                    dst_row[ni * hw..(ni + 1) * hw].copy_from_slice(src);
                }
            }
        });
    }
    // dW = dflat [oc, l] · colsᵀ [l, ckk] -> [oc, ckk]
    let dw = gemm_a_bt(&dflat, cols.as_slice(), oc, l, ckk);
    // db = row sums of dflat.
    let mut db = vec![0.0f32; oc];
    for o in 0..oc {
        db[o] = dflat[o * l..(o + 1) * l].iter().sum();
    }
    // dcols = Wᵀ [ckk, oc] · dflat [oc, l] -> [ckk, l]
    let dcols = gemm_at_b(weight.as_slice(), &dflat, ckk, oc, l);
    let dinput = col2im(&Tensor::from_vec(dcols, [ckk, l]), n, c, h, w, spec);
    Conv2dGrads {
        dinput,
        dweight: Tensor::from_vec(dw, [oc, c, kh, kw]),
        dbias: Tensor::from_vec(db, [oc]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::rng_from_seed;

    fn naive_conv(input: &Tensor, weight: &Tensor, bias: &Tensor, spec: ConvSpec) -> Tensor {
        let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
        let oc = weight.dim(0);
        let (oh, ow) = spec.output_hw(h, w).unwrap();
        Tensor::from_fn([n, oc, oh, ow], |idx| {
            let (ni, o, oi, oj) = (idx[0], idx[1], idx[2], idx[3]);
            let mut acc = bias.at(&[o]);
            for ci in 0..c {
                for ki in 0..spec.kh {
                    for kj in 0..spec.kw {
                        let iy = (oi * spec.stride + ki) as isize - spec.pad as isize;
                        let ix = (oj * spec.stride + kj) as isize - spec.pad as isize;
                        if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                            continue;
                        }
                        acc += input.at(&[ni, ci, iy as usize, ix as usize])
                            * weight.at(&[o, ci, ki, kj]);
                    }
                }
            }
            acc
        })
    }

    #[test]
    fn spec_same_preserves_spatial_size() {
        let spec = ConvSpec::same(3);
        assert_eq!(spec.output_hw(32, 32), Some((32, 32)));
        assert_eq!(spec.output_hw(5, 7), Some((5, 7)));
    }

    #[test]
    fn spec_valid_shrinks() {
        assert_eq!(ConvSpec::valid(3).output_hw(5, 5), Some((3, 3)));
        assert_eq!(ConvSpec::valid(3).output_hw(2, 2), None);
    }

    #[test]
    fn spec_strided() {
        let spec = ConvSpec {
            kh: 2,
            kw: 2,
            stride: 2,
            pad: 0,
        };
        assert_eq!(spec.output_hw(8, 8), Some((4, 4)));
        assert_eq!(spec.output_hw(7, 7), Some((3, 3)));
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1: columns are just the flattened pixels.
        let input = Tensor::arange(0.0, 1.0, 8).reshape([2, 1, 2, 2]);
        let cols = im2col(
            &input,
            ConvSpec {
                kh: 1,
                kw: 1,
                stride: 1,
                pad: 0,
            },
        );
        assert_eq!(cols.dims(), &[1, 8]);
        assert_eq!(cols.as_slice(), input.as_slice());
    }

    #[test]
    fn im2col_col2im_adjoint_property() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property that makes the backward pass correct.
        let mut rng = rng_from_seed(11);
        let spec = ConvSpec::same(3);
        let x = Tensor::randn([2, 3, 5, 5], &mut rng);
        let cx = im2col(&x, spec);
        let y = Tensor::randn(cx.dims().to_vec(), &mut rng);
        let lhs: f32 = cx
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let folded = col2im(&y, 2, 3, 5, 5, spec);
        let rhs: f32 = x
            .as_slice()
            .iter()
            .zip(folded.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0));
    }

    #[test]
    fn forward_matches_naive_same_padding() {
        let mut rng = rng_from_seed(3);
        let spec = ConvSpec::same(3);
        let x = Tensor::randn([2, 3, 6, 6], &mut rng);
        let w = Tensor::randn([4, 3, 3, 3], &mut rng);
        let b = Tensor::randn([4], &mut rng);
        let fast = conv2d_forward(&x, &w, &b, spec).unwrap().output;
        let slow = naive_conv(&x, &w, &b, spec);
        assert!(fast.allclose(&slow, 1e-4));
    }

    #[test]
    fn forward_matches_naive_valid_strided() {
        let mut rng = rng_from_seed(5);
        let spec = ConvSpec {
            kh: 3,
            kw: 3,
            stride: 2,
            pad: 0,
        };
        let x = Tensor::randn([1, 2, 9, 9], &mut rng);
        let w = Tensor::randn([3, 2, 3, 3], &mut rng);
        let b = Tensor::zeros([3]);
        let fast = conv2d_forward(&x, &w, &b, spec).unwrap().output;
        let slow = naive_conv(&x, &w, &b, spec);
        assert_eq!(fast.dims(), &[1, 3, 4, 4]);
        assert!(fast.allclose(&slow, 1e-4));
    }

    #[test]
    fn forward_rejects_mismatched_weight() {
        let x = Tensor::zeros([1, 3, 8, 8]);
        let w = Tensor::zeros([4, 2, 3, 3]); // wrong in_channels
        let b = Tensor::zeros([4]);
        assert!(conv2d_forward(&x, &w, &b, ConvSpec::same(3)).is_err());
    }

    #[test]
    fn conv_pipeline_bitwise_identical_across_thread_counts() {
        use stsl_parallel::with_threads;
        let mut rng = rng_from_seed(23);
        let spec = ConvSpec::same(3);
        let x = Tensor::randn([5, 3, 7, 7], &mut rng);
        let w = Tensor::randn([4, 3, 3, 3], &mut rng);
        let b = Tensor::randn([4], &mut rng);
        let dout = Tensor::randn([5, 4, 7, 7], &mut rng);
        let run = || {
            let fwd = conv2d_forward(&x, &w, &b, spec).unwrap();
            let grads = conv2d_backward(&dout, &fwd.cols, &w, (5, 3, 7, 7), spec);
            (fwd.output, fwd.cols, grads)
        };
        let (so, sc, sg) = with_threads(1, run);
        for threads in [2usize, 4] {
            let (po, pc, pg) = with_threads(threads, run);
            assert_eq!(so, po, "forward output drifted at {} threads", threads);
            assert_eq!(sc, pc, "im2col drifted at {} threads", threads);
            assert_eq!(
                sg.dinput, pg.dinput,
                "dinput drifted at {} threads",
                threads
            );
            assert_eq!(
                sg.dweight, pg.dweight,
                "dweight drifted at {} threads",
                threads
            );
            assert_eq!(sg.dbias, pg.dbias, "dbias drifted at {} threads", threads);
        }
    }

    #[test]
    fn backward_gradients_match_finite_differences() {
        let mut rng = rng_from_seed(17);
        let spec = ConvSpec::same(3);
        let x = Tensor::randn([1, 2, 4, 4], &mut rng);
        let w = Tensor::randn([2, 2, 3, 3], &mut rng);
        let b = Tensor::randn([2], &mut rng);
        // Loss = sum(output * m) for a fixed random m, so dLoss/doutput = m.
        let m = Tensor::randn([1, 2, 4, 4], &mut rng);
        let fwd = conv2d_forward(&x, &w, &b, spec).unwrap();
        let grads = conv2d_backward(&m, &fwd.cols, &w, (1, 2, 4, 4), spec);

        let loss = |x: &Tensor, w: &Tensor, b: &Tensor| -> f32 {
            let o = conv2d_forward(x, w, b, spec).unwrap().output;
            o.as_slice()
                .iter()
                .zip(m.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        let eps = 1e-2f32;
        // Check a scattering of coordinates in each gradient.
        for probe in 0..6 {
            let i = probe * 5 % x.len();
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let num = (loss(&xp, &w, &b) - loss(&xm, &w, &b)) / (2.0 * eps);
            let ana = grads.dinput.as_slice()[i];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + ana.abs()),
                "dx[{}]: {} vs {}",
                i,
                num,
                ana
            );
        }
        for probe in 0..6 {
            let i = probe * 7 % w.len();
            let mut wp = w.clone();
            wp.as_mut_slice()[i] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[i] -= eps;
            let num = (loss(&x, &wp, &b) - loss(&x, &wm, &b)) / (2.0 * eps);
            let ana = grads.dweight.as_slice()[i];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + ana.abs()),
                "dw[{}]: {} vs {}",
                i,
                num,
                ana
            );
        }
        for i in 0..b.len() {
            let mut bp = b.clone();
            bp.as_mut_slice()[i] += eps;
            let mut bm = b.clone();
            bm.as_mut_slice()[i] -= eps;
            let num = (loss(&x, &w, &bp) - loss(&x, &w, &bm)) / (2.0 * eps);
            let ana = grads.dbias.as_slice()[i];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + ana.abs()),
                "db[{}]: {} vs {}",
                i,
                num,
                ana
            );
        }
    }
}
