//! Elementwise convenience methods and additional axis reductions.

use crate::{Shape, Tensor};

impl Tensor {
    /// Elementwise exponential.
    pub fn exp(&self) -> Tensor {
        self.map(f32::exp)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Tensor {
        self.map(f32::ln)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        self.map(f32::sqrt)
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Tensor {
        self.map(f32::abs)
    }

    /// Elementwise square.
    pub fn square(&self) -> Tensor {
        self.map(|x| x * x)
    }

    /// Clamps every element into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clip(&self, lo: f32, hi: f32) -> Tensor {
        assert!(lo <= hi, "invalid clip range [{}, {}]", lo, hi);
        self.map(|x| x.clamp(lo, hi))
    }

    /// Maximum along `axis`, removing that dimension.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank` or the axis has extent 0.
    pub fn max_axis(&self, axis: usize) -> Tensor {
        self.fold_axis(axis, f32::NEG_INFINITY, f32::max)
    }

    /// Minimum along `axis`, removing that dimension.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank` or the axis has extent 0.
    pub fn min_axis(&self, axis: usize) -> Tensor {
        self.fold_axis(axis, f32::INFINITY, f32::min)
    }

    /// Population variance along `axis`, removing that dimension.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank` or the axis has extent 0.
    pub fn var_axis(&self, axis: usize) -> Tensor {
        let n = self.dim(axis);
        assert!(n > 0, "variance over empty axis");
        let mean = self.mean_axis(axis);
        let mean_sq = self.map(|x| x * x).mean_axis(axis);
        mean_sq.zip_map(&mean, |msq, m| (msq - m * m).max(0.0))
    }

    fn fold_axis(&self, axis: usize, init: f32, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert!(
            axis < self.rank(),
            "axis {} out of range for rank {}",
            axis,
            self.rank()
        );
        assert!(self.dim(axis) > 0, "reduction over empty axis");
        let out_shape: Shape = self.shape().remove_axis(axis);
        let dims = self.dims();
        let inner: usize = dims[axis + 1..].iter().product();
        let n_axis = dims[axis];
        let outer: usize = dims[..axis].iter().product();
        let src = self.as_slice();
        let mut out = vec![init; out_shape.len().max(1)];
        for o in 0..outer {
            for k in 0..n_axis {
                let base = (o * n_axis + k) * inner;
                let obase = o * inner;
                for i in 0..inner {
                    out[obase + i] = f(out[obase + i], src[base + i]);
                }
            }
        }
        Tensor::from_vec(out, out_shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::rng_from_seed;

    #[test]
    fn unary_maps() {
        let t = Tensor::from_vec(vec![1.0, 4.0], [2]);
        assert_eq!(t.sqrt().as_slice(), &[1.0, 2.0]);
        assert_eq!(t.square().as_slice(), &[1.0, 16.0]);
        let n = Tensor::from_vec(vec![-2.0, 3.0], [2]);
        assert_eq!(n.abs().as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn exp_ln_roundtrip() {
        let t = Tensor::rand_uniform([20], 0.1, 5.0, &mut rng_from_seed(0));
        let back = t.exp().ln();
        assert!(back.allclose(&t, 1e-4));
    }

    #[test]
    fn clip_bounds() {
        let t = Tensor::from_vec(vec![-5.0, 0.5, 5.0], [3]);
        assert_eq!(t.clip(-1.0, 1.0).as_slice(), &[-1.0, 0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "invalid clip range")]
    fn clip_rejects_inverted_range() {
        Tensor::zeros([1]).clip(1.0, 0.0);
    }

    #[test]
    fn max_min_axis() {
        let t = Tensor::from_vec(vec![1.0, 5.0, 3.0, 4.0, 2.0, 6.0], [2, 3]);
        assert_eq!(t.max_axis(1).as_slice(), &[5.0, 6.0]);
        assert_eq!(t.min_axis(1).as_slice(), &[1.0, 2.0]);
        assert_eq!(t.max_axis(0).as_slice(), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn max_axis_matches_global_max() {
        let t = Tensor::randn([3, 4, 5], &mut rng_from_seed(1));
        let reduced = t.max_axis(0).max_axis(0).max_axis(0);
        assert!((reduced.item() - t.max()).abs() < 1e-6);
    }

    #[test]
    fn var_axis_of_constant_rows_is_zero() {
        let t = Tensor::from_vec(vec![3.0, 3.0, 3.0, 1.0, 2.0, 3.0], [2, 3]);
        let v = t.var_axis(1);
        assert!(v.at(&[0]).abs() < 1e-6);
        assert!((v.at(&[1]) - 2.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn var_axis_matches_channel_stats_definition() {
        let t = Tensor::randn([200], &mut rng_from_seed(2));
        let v = t.var_axis(0).item();
        let mean = t.mean();
        let direct = t
            .as_slice()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / 200.0;
        assert!((v - direct).abs() < 1e-4);
    }
}
