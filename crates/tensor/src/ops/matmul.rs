//! Matrix multiplication kernels.
//!
//! Every public entry point dispatches on [`Backend::active`]:
//!
//! * **Reference** — the `i-k-j`-ordered scalar kernel this crate has
//!   always used. Each output element accumulates its `k` terms in
//!   ascending-`kk` order directly into `C`, so it defines the exact
//!   summation order the conformance suite treats as the oracle.
//! * **Blocked** — packed cache-blocked microkernels (see
//!   [`super::blocked`]) that accumulate `KC`-deep panel sums in
//!   registers; ULP-bounded against the reference, much faster.
//!
//! Both paths are row-parallelized with `stsl-parallel` over disjoint
//! `split_at_mut` slices and keep every element's accumulation order
//! independent of the partition, so within each backend results are
//! bitwise identical for every `STSL_THREADS` setting.

use crate::ops::blocked;
use crate::{Backend, Tensor, TensorError};
use stsl_parallel::{par_chunks_mut, ChunkPolicy};

/// Cache-block edge (elements). 64×64 f32 blocks ≈ 16 KiB, comfortably L1.
const BLOCK: usize = 64;

/// Minimum multiply-adds worth handing to a thread; smaller row blocks are
/// pure spawn overhead.
const PAR_GRAIN: usize = 1 << 14;

/// Row-partitioning policy for an output whose rows each cost
/// `work_per_row` multiply-adds.
fn row_policy(work_per_row: usize) -> ChunkPolicy {
    ChunkPolicy::min_chunk((PAR_GRAIN / work_per_row.max(1)).max(1))
}

/// Computes `C = A · B` for row-major slices: `a` is `m×k`, `b` is `k×n`,
/// and the result is `m×n`.
///
/// This is the raw kernel; prefer [`Tensor::matmul`] in library code.
///
/// # Panics
///
/// Panics if slice lengths disagree with the stated dimensions.
pub fn gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    let mut c = vec![0.0f32; m * n];
    gemm_into(a, b, &mut c, m, k, n, 1.0);
    c
}

/// Computes `C += alpha * A · B` into an existing buffer.
///
/// # Panics
///
/// Panics if slice lengths disagree with the stated dimensions.
pub fn gemm_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize, alpha: f32) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    if c.is_empty() {
        return;
    }
    match Backend::active() {
        Backend::Reference => {
            par_chunks_mut(c, n, row_policy(k * n), |row0, chunk| {
                gemm_rows(a, b, chunk, row0, k, n, alpha);
            });
        }
        Backend::Blocked => blocked::gemm_into(a, b, c, m, k, n, alpha),
    }
}

/// Serial blocked kernel for one contiguous band of output rows: `chunk`
/// holds rows `row0..row0+chunk.len()/n` of `C` and accumulates
/// `alpha * A·B` into them.
///
/// Each `c[i][j]` sums its `k` terms in ascending-`kk` order (the `i`/`j`
/// cache blocking never reorders a single element's accumulation), so the
/// result does not depend on where the band boundaries fall.
fn gemm_rows(a: &[f32], b: &[f32], c: &mut [f32], row0: usize, k: usize, n: usize, alpha: f32) {
    let rows = c.len() / n;
    for i0 in (0..rows).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(rows);
        for k0 in (0..k).step_by(BLOCK) {
            let k1 = (k0 + BLOCK).min(k);
            for j0 in (0..n).step_by(BLOCK) {
                let j1 = (j0 + BLOCK).min(n);
                for i in i0..i1 {
                    let crow = &mut c[i * n..(i + 1) * n];
                    let arow = &a[(row0 + i) * k..(row0 + i + 1) * k];
                    for kk in k0..k1 {
                        let aik = alpha * arow[kk];
                        if aik == 0.0 {
                            continue;
                        }
                        let brow = &b[kk * n..(kk + 1) * n];
                        // The inner j-loop is contiguous over both B and C,
                        // which lets LLVM auto-vectorize it.
                        for j in j0..j1 {
                            crow[j] += aik * brow[j];
                        }
                    }
                }
            }
        }
    }
}

/// Computes `C = Aᵀ · B` where `a` is `k×m` (so the result is `m×n`).
///
/// Avoids materializing the transpose; used by conv/dense backward passes.
///
/// # Panics
///
/// Panics if slice lengths disagree with the stated dimensions.
pub fn gemm_at_b(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), k * m, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    let mut c = vec![0.0f32; m * n];
    if c.is_empty() {
        return c;
    }
    if Backend::active() == Backend::Blocked {
        return blocked::gemm_at_b(a, b, m, k, n);
    }
    // Output rows are partitioned across threads; per element the k terms
    // still accumulate in ascending-kk order (A is read strided instead of
    // transposed), so this matches the serial result bit for bit.
    par_chunks_mut(&mut c, n, row_policy(k * n), |row0, chunk| {
        let rows = chunk.len() / n;
        for i in 0..rows {
            let crow = &mut chunk[i * n..(i + 1) * n];
            for kk in 0..k {
                let aik = a[kk * m + row0 + i];
                if aik == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..(kk + 1) * n];
                for j in 0..n {
                    crow[j] += aik * brow[j];
                }
            }
        }
    });
    c
}

/// Computes `C = A · Bᵀ` where `b` is `n×k` (so the result is `m×n`).
///
/// # Panics
///
/// Panics if slice lengths disagree with the stated dimensions.
pub fn gemm_a_bt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), n * k, "rhs length");
    let mut c = vec![0.0f32; m * n];
    if c.is_empty() {
        return c;
    }
    if Backend::active() == Backend::Blocked {
        return blocked::gemm_a_bt(a, b, m, k, n);
    }
    par_chunks_mut(&mut c, n, row_policy(k * n), |row0, chunk| {
        let rows = chunk.len() / n;
        for i in 0..rows {
            let arow = &a[(row0 + i) * k..(row0 + i + 1) * k];
            for j in 0..n {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += arow[kk] * brow[kk];
                }
                chunk[i * n + j] = acc;
            }
        }
    });
    c
}

impl Tensor {
    /// Matrix product of two rank-2 tensors.
    ///
    /// # Panics
    ///
    /// Panics on rank or inner-dimension mismatch. See
    /// [`Tensor::try_matmul`] for the fallible variant.
    ///
    /// # Examples
    ///
    /// ```
    /// use stsl_tensor::Tensor;
    ///
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
    /// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]);
    /// assert_eq!(a.matmul(&i), a);
    /// ```
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        self.try_matmul(rhs).expect("matmul shape mismatch")
    }

    /// Fallible [`Tensor::matmul`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] if either operand is not
    /// rank 2 or the inner dimensions differ.
    pub fn try_matmul(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        if self.rank() != 2 || rhs.rank() != 2 {
            return Err(TensorError::IncompatibleShapes {
                reason: format!(
                    "matmul requires rank-2 operands, got {} and {}",
                    self.shape(),
                    rhs.shape()
                ),
            });
        }
        let (m, k) = (self.dim(0), self.dim(1));
        let (k2, n) = (rhs.dim(0), rhs.dim(1));
        if k != k2 {
            return Err(TensorError::IncompatibleShapes {
                reason: format!(
                    "matmul inner dims differ: {} vs {}",
                    self.shape(),
                    rhs.shape()
                ),
            });
        }
        let c = gemm(self.as_slice(), rhs.as_slice(), m, k, n);
        Ok(Tensor::from_vec(c, [m, n]))
    }

    /// `selfᵀ · rhs` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics on rank or dimension mismatch.
    pub fn t_matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "t_matmul lhs rank");
        assert_eq!(rhs.rank(), 2, "t_matmul rhs rank");
        let (k, m) = (self.dim(0), self.dim(1));
        assert_eq!(
            k,
            rhs.dim(0),
            "t_matmul inner dims: {} vs {}",
            self.shape(),
            rhs.shape()
        );
        let n = rhs.dim(1);
        let c = gemm_at_b(self.as_slice(), rhs.as_slice(), m, k, n);
        Tensor::from_vec(c, [m, n])
    }

    /// `self · rhsᵀ` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics on rank or dimension mismatch.
    pub fn matmul_t(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_t lhs rank");
        assert_eq!(rhs.rank(), 2, "matmul_t rhs rank");
        let (m, k) = (self.dim(0), self.dim(1));
        assert_eq!(
            k,
            rhs.dim(1),
            "matmul_t inner dims: {} vs {}",
            self.shape(),
            rhs.shape()
        );
        let n = rhs.dim(0);
        let c = gemm_a_bt(self.as_slice(), rhs.as_slice(), m, k, n);
        Tensor::from_vec(c, [m, n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::rng_from_seed;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k, n) = (a.dim(0), a.dim(1), b.dim(1));
        Tensor::from_fn([m, n], |idx| {
            (0..k)
                .map(|kk| a.at(&[idx[0], kk]) * b.at(&[kk, idx[1]]))
                .sum()
        })
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn known_small_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], [3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn blocked_matches_naive_on_awkward_sizes() {
        // Sizes straddling the 64-element block edge.
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (63, 65, 64), (70, 1, 70)] {
            let mut rng = rng_from_seed(9);
            let a = Tensor::randn([m, k], &mut rng);
            let b = Tensor::randn([k, n], &mut rng);
            let fast = a.matmul(&b);
            let slow = naive(&a, &b);
            assert!(
                fast.allclose(&slow, 1e-4),
                "mismatch at ({},{},{})",
                m,
                k,
                n
            );
        }
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let mut rng = rng_from_seed(4);
        let a = Tensor::randn([5, 3], &mut rng);
        let b = Tensor::randn([5, 4], &mut rng);
        assert!(a.t_matmul(&b).allclose(&a.transpose().matmul(&b), 1e-5));
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let mut rng = rng_from_seed(4);
        let a = Tensor::randn([5, 3], &mut rng);
        let b = Tensor::randn([4, 3], &mut rng);
        assert!(a.matmul_t(&b).allclose(&a.matmul(&b.transpose()), 1e-5));
    }

    #[test]
    fn try_matmul_rejects_bad_shapes() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        assert!(a.try_matmul(&b).is_err());
        let v = Tensor::zeros([3]);
        assert!(a.try_matmul(&v).is_err());
    }

    #[test]
    fn kernels_bitwise_identical_across_thread_counts() {
        use stsl_parallel::with_threads;
        let mut rng = rng_from_seed(21);
        // Awkward sizes: straddle the cache-block edge and split unevenly
        // across 4 threads so band boundaries land mid-block.
        let (m, k, n) = (67, 33, 41);
        let a = Tensor::randn([m, k], &mut rng);
        let b = Tensor::randn([k, n], &mut rng);
        let bt = Tensor::randn([n, k], &mut rng);
        let at = Tensor::randn([k, m], &mut rng);
        for threads in [2usize, 4, 7] {
            // gemm_rows is the reference kernel, so pin the reference
            // backend for the public-API side of the comparison.
            let serial = crate::with_backend(Backend::Reference, || {
                with_threads(1, || gemm(a.as_slice(), b.as_slice(), m, k, n))
            });
            // min_chunk 1 forces actual multi-thread partitioning even on
            // sizes below the work grain.
            let par = with_threads(threads, || {
                let mut c = vec![0.0f32; m * n];
                par_chunks_mut(&mut c, n, ChunkPolicy::min_chunk(1), |row0, chunk| {
                    gemm_rows(a.as_slice(), b.as_slice(), chunk, row0, k, n, 1.0);
                });
                c
            });
            assert_eq!(serial, par, "gemm drifted at {} threads", threads);
            let s_atb = with_threads(1, || gemm_at_b(at.as_slice(), b.as_slice(), m, k, n));
            let p_atb = with_threads(threads, || gemm_at_b(at.as_slice(), b.as_slice(), m, k, n));
            assert_eq!(s_atb, p_atb, "gemm_at_b drifted at {} threads", threads);
            let s_abt = with_threads(1, || gemm_a_bt(a.as_slice(), bt.as_slice(), m, k, n));
            let p_abt = with_threads(threads, || gemm_a_bt(a.as_slice(), bt.as_slice(), m, k, n));
            assert_eq!(s_abt, p_abt, "gemm_a_bt drifted at {} threads", threads);
        }
    }

    #[test]
    fn gemm_into_accumulates_with_alpha() {
        let a = [1.0f32, 0.0, 0.0, 1.0];
        let b = [2.0f32, 0.0, 0.0, 2.0];
        let mut c = vec![1.0f32; 4];
        gemm_into(&a, &b, &mut c, 2, 2, 2, 0.5);
        assert_eq!(c, vec![2.0, 1.0, 1.0, 2.0]);
    }
}
