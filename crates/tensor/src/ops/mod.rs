//! Numeric kernels: reductions, GEMM, convolution, pooling.
//!
//! The GEMM and softmax/reduction families dispatch per call on
//! [`crate::Backend`]: a scalar reference path (the numeric oracle) and
//! the cache-blocked packed path in [`blocked`].

pub(crate) mod blocked;
pub mod conv;
pub mod elementwise;
pub mod matmul;
pub mod pool;
pub mod reduce;
