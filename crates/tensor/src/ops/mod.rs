//! Numeric kernels: reductions, GEMM, convolution, pooling.

pub mod conv;
pub mod elementwise;
pub mod matmul;
pub mod pool;
pub mod reduce;
