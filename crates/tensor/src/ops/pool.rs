//! Max and average pooling with backward passes.

use crate::ops::conv::ConvSpec;
use crate::Tensor;

/// Result of a max-pooling forward pass.
///
/// `argmax` stores, for every output element, the flat index (within the
/// whole input tensor) of the input element that won the max — exactly what
/// the backward pass needs to route gradients.
#[derive(Debug, Clone)]
pub struct MaxPool2dForward {
    /// Pooled activations, `[n, c, oh, ow]`.
    pub output: Tensor,
    /// Flat input index of each selected maximum.
    pub argmax: Vec<usize>,
}

/// Max-pooling forward pass over an `[n, c, h, w]` tensor.
///
/// Windows that extend past the input edge (when `h`/`w` is not a multiple
/// of the stride) are truncated, matching Keras' `MaxPooling2D` default.
///
/// # Panics
///
/// Panics if `input` is not rank 4 or the window does not fit.
pub fn maxpool2d_forward(input: &Tensor, spec: ConvSpec) -> MaxPool2dForward {
    assert_eq!(
        input.rank(),
        4,
        "maxpool2d requires NCHW input, got {}",
        input.shape()
    );
    assert_eq!(spec.pad, 0, "maxpool2d does not support padding");
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let (oh, ow) = spec
        .output_hw(h, w)
        .expect("pooling window does not fit input");
    let src = input.as_slice();
    let mut out = Vec::with_capacity(n * c * oh * ow);
    let mut argmax = Vec::with_capacity(n * c * oh * ow);
    for ni in 0..n {
        for ci in 0..c {
            let plane_off = (ni * c + ci) * h * w;
            for oi in 0..oh {
                for oj in 0..ow {
                    let y0 = oi * spec.stride;
                    let x0 = oj * spec.stride;
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = plane_off + y0 * w + x0;
                    for ky in 0..spec.kh.min(h - y0) {
                        for kx in 0..spec.kw.min(w - x0) {
                            let idx = plane_off + (y0 + ky) * w + (x0 + kx);
                            if src[idx] > best {
                                best = src[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    out.push(best);
                    argmax.push(best_idx);
                }
            }
        }
    }
    MaxPool2dForward {
        output: Tensor::from_vec(out, [n, c, oh, ow]),
        argmax,
    }
}

/// Max-pooling backward pass: routes each output gradient to the input
/// element that produced the maximum.
///
/// # Panics
///
/// Panics if `dout.len() != argmax.len()`.
pub fn maxpool2d_backward(dout: &Tensor, argmax: &[usize], input_len: usize) -> Tensor {
    assert_eq!(dout.len(), argmax.len(), "dout/argmax length mismatch");
    let mut dinput = vec![0.0f32; input_len];
    for (g, &idx) in dout.as_slice().iter().zip(argmax) {
        dinput[idx] += g;
    }
    Tensor::from_vec(dinput, [input_len])
}

/// Average-pooling forward pass (used by ablations; the paper's CNN uses
/// max pooling only).
///
/// # Panics
///
/// Panics if `input` is not rank 4 or the window does not fit.
pub fn avgpool2d_forward(input: &Tensor, spec: ConvSpec) -> Tensor {
    assert_eq!(input.rank(), 4, "avgpool2d requires NCHW input");
    assert_eq!(spec.pad, 0, "avgpool2d does not support padding");
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let (oh, ow) = spec
        .output_hw(h, w)
        .expect("pooling window does not fit input");
    let src = input.as_slice();
    let mut out = Vec::with_capacity(n * c * oh * ow);
    for ni in 0..n {
        for ci in 0..c {
            let plane_off = (ni * c + ci) * h * w;
            for oi in 0..oh {
                for oj in 0..ow {
                    let y0 = oi * spec.stride;
                    let x0 = oj * spec.stride;
                    let hh = spec.kh.min(h - y0);
                    let ww = spec.kw.min(w - x0);
                    let mut acc = 0.0;
                    for ky in 0..hh {
                        for kx in 0..ww {
                            acc += src[plane_off + (y0 + ky) * w + (x0 + kx)];
                        }
                    }
                    out.push(acc / (hh * ww) as f32);
                }
            }
        }
    }
    Tensor::from_vec(out, [n, c, oh, ow])
}

/// Average-pooling backward pass: each output gradient is spread equally
/// over its window. Exact adjoint of [`avgpool2d_forward`].
///
/// # Panics
///
/// Panics on shape mismatch with the forward geometry.
pub fn avgpool2d_backward(
    dout: &Tensor,
    input_dims: (usize, usize, usize, usize),
    spec: ConvSpec,
) -> Tensor {
    let (n, c, h, w) = input_dims;
    let (oh, ow) = spec
        .output_hw(h, w)
        .expect("pooling window does not fit input");
    assert_eq!(dout.dims(), &[n, c, oh, ow], "dout shape mismatch");
    let g = dout.as_slice();
    let mut dinput = vec![0.0f32; n * c * h * w];
    for ni in 0..n {
        for ci in 0..c {
            let plane_off = (ni * c + ci) * h * w;
            let out_off = (ni * c + ci) * oh * ow;
            for oi in 0..oh {
                for oj in 0..ow {
                    let y0 = oi * spec.stride;
                    let x0 = oj * spec.stride;
                    let hh = spec.kh.min(h - y0);
                    let ww = spec.kw.min(w - x0);
                    let share = g[out_off + oi * ow + oj] / (hh * ww) as f32;
                    for ky in 0..hh {
                        for kx in 0..ww {
                            dinput[plane_off + (y0 + ky) * w + (x0 + kx)] += share;
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(dinput, [n, c, h, w])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::rng_from_seed;

    fn pool2() -> ConvSpec {
        ConvSpec {
            kh: 2,
            kw: 2,
            stride: 2,
            pad: 0,
        }
    }

    #[test]
    fn maxpool_known_values() {
        #[rustfmt::skip]
        let x = Tensor::from_vec(vec![
            1.0, 2.0, 5.0, 6.0,
            3.0, 4.0, 7.0, 8.0,
            9.0, 1.0, 2.0, 3.0,
            1.0, 1.0, 4.0, 0.0,
        ], [1, 1, 4, 4]);
        let p = maxpool2d_forward(&x, pool2());
        assert_eq!(p.output.dims(), &[1, 1, 2, 2]);
        assert_eq!(p.output.as_slice(), &[4.0, 8.0, 9.0, 4.0]);
    }

    #[test]
    fn maxpool_argmax_points_at_winner() {
        let x = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0], [1, 1, 2, 2]);
        let p = maxpool2d_forward(&x, pool2());
        assert_eq!(p.argmax, vec![3]);
    }

    #[test]
    fn maxpool_truncates_odd_edges() {
        // 5x5 with 2x2/2 pooling -> 2x2 (Keras truncation semantics).
        let x = Tensor::ones([1, 1, 5, 5]);
        let p = maxpool2d_forward(&x, pool2());
        assert_eq!(p.output.dims(), &[1, 1, 2, 2]);
    }

    #[test]
    fn maxpool_backward_routes_gradient() {
        let x = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0], [1, 1, 2, 2]);
        let p = maxpool2d_forward(&x, pool2());
        let dout = Tensor::from_vec(vec![5.0], [1, 1, 1, 1]);
        let dx = maxpool2d_backward(&dout, &p.argmax, 4);
        assert_eq!(dx.as_slice(), &[0.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn maxpool_backward_matches_finite_differences() {
        let mut rng = rng_from_seed(23);
        let x = Tensor::randn([2, 2, 4, 4], &mut rng);
        let m = Tensor::randn([2, 2, 2, 2], &mut rng);
        let p = maxpool2d_forward(&x, pool2());
        let dx = maxpool2d_backward(&m, &p.argmax, x.len());
        let loss = |x: &Tensor| -> f32 {
            let o = maxpool2d_forward(x, pool2()).output;
            o.as_slice()
                .iter()
                .zip(m.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        let eps = 1e-3;
        for i in (0..x.len()).step_by(7) {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            let ana = dx.as_slice()[i];
            // Finite differences can disagree exactly at max ties; tolerance
            // is loose but the structure (zero vs nonzero) must hold.
            assert!(
                (num - ana).abs() < 0.05 * (1.0 + ana.abs()),
                "dx[{}]: {} vs {}",
                i,
                num,
                ana
            );
        }
    }

    #[test]
    fn maxpool_batch_channel_independence() {
        let mut rng = rng_from_seed(31);
        let a = Tensor::randn([1, 1, 4, 4], &mut rng);
        let b = Tensor::randn([1, 1, 4, 4], &mut rng);
        let joint = Tensor::concat0(&[a.clone(), b.clone()]);
        let pj = maxpool2d_forward(&joint, pool2()).output;
        let pa = maxpool2d_forward(&a, pool2()).output;
        let pb = maxpool2d_forward(&b, pool2()).output;
        assert_eq!(pj.index_axis0(0), pa.index_axis0(0));
        assert_eq!(pj.index_axis0(1), pb.index_axis0(0));
    }

    #[test]
    fn avgpool_known_values() {
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], [1, 1, 2, 2]);
        let p = avgpool2d_forward(&x, pool2());
        assert_eq!(p.as_slice(), &[4.0]);
    }

    #[test]
    fn avgpool_backward_spreads_gradient_uniformly() {
        let dout = Tensor::from_vec(vec![4.0], [1, 1, 1, 1]);
        let dx = avgpool2d_backward(&dout, (1, 1, 2, 2), pool2());
        assert_eq!(dx.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn avgpool_backward_matches_finite_differences() {
        let mut rng = rng_from_seed(41);
        let x = Tensor::randn([2, 2, 4, 4], &mut rng);
        let m = Tensor::randn([2, 2, 2, 2], &mut rng);
        let dx = avgpool2d_backward(&m, (2, 2, 4, 4), pool2());
        let loss = |x: &Tensor| -> f32 {
            let o = avgpool2d_forward(x, pool2());
            o.as_slice()
                .iter()
                .zip(m.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        let eps = 1e-3;
        for i in (0..x.len()).step_by(5) {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!((num - dx.as_slice()[i]).abs() < 1e-3 * (1.0 + num.abs()));
        }
    }

    #[test]
    fn avgpool_edge_windows_average_fewer_elements() {
        let x = Tensor::ones([1, 1, 3, 3]);
        let p = avgpool2d_forward(&x, pool2());
        // All ones stay ones regardless of window truncation.
        assert_eq!(p.dims(), &[1, 1, 1, 1]);
        assert_eq!(p.as_slice(), &[1.0]);
    }
}
