//! Reductions: sums, means, extrema, argmax, softmax.
//!
//! The softmax family and the full-tensor sum dispatch on
//! [`Backend::active`]: the reference path keeps the exact left-fold
//! summation order, the blocked path uses fixed-order lane partial sums
//! ([`blocked::sum_lanes`]) and row-parallel softmax. Axis reductions,
//! extrema and argmax are order-insensitive or intentionally shared, so
//! they are backend-invariant (asserted by `tests/kernel_conformance.rs`).

use crate::ops::blocked;
use crate::{Backend, Shape, Tensor};
use stsl_parallel::{par_chunks_mut, ChunkPolicy};

/// Minimum row elements worth handing a softmax row band to a thread.
const SOFTMAX_GRAIN: usize = 1 << 12;

/// Order-pinned left-fold sum of an `f32` stream.
///
/// This module is the sanctioned seam for non-associative float
/// reductions (the audit's float-reduction rule forbids ad-hoc `f32`/
/// `f64` accumulation elsewhere): accumulation order here is the
/// iterator's order, pinned by construction, so results are bitwise
/// reproducible for a given input sequence.
pub fn sum_f32(values: impl IntoIterator<Item = f32>) -> f32 {
    let mut acc = 0.0f32;
    for v in values {
        acc += v;
    }
    acc
}

/// Mean of a slice via [`sum_f32`]; `0.0` on an empty slice.
pub fn mean_f32(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    sum_f32(values.iter().copied()) / values.len() as f32
}

/// Order-pinned left-fold sum of an `f64` stream (see [`sum_f32`]).
pub fn sum_f64(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut acc = 0.0f64;
    for v in values {
        acc += v;
    }
    acc
}

/// Sum of squares of an `f32` slice, accumulated in `f64` so large
/// values do not overflow the partial sums (the ingress-guard RMS path).
pub fn sum_sq_f64(values: &[f32]) -> f64 {
    sum_f64(values.iter().map(|&v| (v as f64) * (v as f64)))
}

/// Fixed-size element blocks for the lane-parallel full-tensor sum; block
/// boundaries depend only on the length, never the thread count, so the
/// combined sum is bitwise thread-invariant.
const SUM_BLOCK: usize = 4096;

/// Blocked full-slice sum: fixed 4096-element blocks reduced with lane
/// partial sums, block results combined in ascending index order.
fn sum_blocked(xs: &[f32]) -> f32 {
    if xs.len() <= SUM_BLOCK {
        return blocked::sum_lanes(xs);
    }
    let blocks = xs.len().div_ceil(SUM_BLOCK);
    let partials = stsl_parallel::par_map_indexed(blocks, ChunkPolicy::min_chunk(4), |bi| {
        let start = bi * SUM_BLOCK;
        blocked::sum_lanes(&xs[start..(start + SUM_BLOCK).min(xs.len())])
    });
    blocked::sum_lanes(&partials)
}

impl Tensor {
    /// Sum of all elements.
    ///
    /// Reference backend: exact left-fold in element order. Blocked
    /// backend: fixed-order lane/block partial sums (ULP-bounded against
    /// the fold, bitwise thread-invariant).
    pub fn sum(&self) -> f32 {
        match Backend::active() {
            Backend::Reference => self.as_slice().iter().sum(),
            Backend::Blocked => sum_blocked(self.as_slice()),
        }
    }

    /// Mean of all elements.
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn mean(&self) -> f32 {
        assert!(!self.is_empty(), "mean of empty tensor");
        self.sum() / self.len() as f32
    }

    /// Maximum element.
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn max(&self) -> f32 {
        assert!(!self.is_empty(), "max of empty tensor");
        self.as_slice()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn min(&self) -> f32 {
        assert!(!self.is_empty(), "min of empty tensor");
        self.as_slice()
            .iter()
            .copied()
            .fold(f32::INFINITY, f32::min)
    }

    /// Sums along `axis`, removing that dimension.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank`.
    pub fn sum_axis(&self, axis: usize) -> Tensor {
        assert!(
            axis < self.rank(),
            "axis {} out of range for rank {}",
            axis,
            self.rank()
        );
        let out_shape = self.shape().remove_axis(axis);
        let mut out = Tensor::zeros(out_shape.clone());
        // Split the flat index into (outer, axis, inner) blocks.
        let dims = self.dims();
        let inner: usize = dims[axis + 1..].iter().product();
        let n_axis = dims[axis];
        let outer: usize = dims[..axis].iter().product();
        let src = self.as_slice();
        let dst = out.as_mut_slice();
        for o in 0..outer {
            for k in 0..n_axis {
                let base = (o * n_axis + k) * inner;
                let obase = o * inner;
                for i in 0..inner {
                    dst[obase + i] += src[base + i];
                }
            }
        }
        debug_assert_eq!(out.shape(), &out_shape);
        out
    }

    /// Means along `axis`, removing that dimension.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank` or the axis has extent 0.
    pub fn mean_axis(&self, axis: usize) -> Tensor {
        let n = self.dim(axis);
        assert!(n > 0, "mean over empty axis");
        let mut t = self.sum_axis(axis);
        t.scale_inplace(1.0 / n as f32);
        t
    }

    /// Index of the maximum element of a 1-d tensor.
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn argmax(&self) -> usize {
        assert!(!self.is_empty(), "argmax of empty tensor");
        self.as_slice()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .expect("non-empty")
    }

    /// Row-wise argmax of a rank-2 tensor `[n, c]` → `n` class indices.
    ///
    /// This is the prediction rule used for classification accuracy.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or has zero columns.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(
            self.rank(),
            2,
            "argmax_rows requires rank 2, got {}",
            self.shape()
        );
        let (n, c) = (self.dim(0), self.dim(1));
        assert!(c > 0, "argmax_rows requires at least one column");
        let data = self.as_slice();
        (0..n)
            .map(|r| {
                let row = &data[r * c..(r + 1) * c];
                let mut best = 0;
                for (j, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = j;
                    }
                }
                best
            })
            .collect()
    }

    /// Numerically stable softmax along the last axis of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn softmax_rows(&self) -> Tensor {
        assert_eq!(
            self.rank(),
            2,
            "softmax_rows requires rank 2, got {}",
            self.shape()
        );
        let (n, c) = (self.dim(0), self.dim(1));
        let src = self.as_slice();
        let mut out = vec![0.0f32; n * c];
        match Backend::active() {
            Backend::Reference => {
                for r in 0..n {
                    let row = &src[r * c..(r + 1) * c];
                    let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    let mut denom = 0.0;
                    for (j, &v) in row.iter().enumerate() {
                        let e = (v - m).exp();
                        out[r * c + j] = e;
                        denom += e;
                    }
                    for j in 0..c {
                        out[r * c + j] /= denom;
                    }
                }
            }
            Backend::Blocked => {
                // Row-parallel: each row is one independent unit, so any
                // band partition yields identical bits. The max and the
                // exponentials match the reference exactly (same scalar
                // fold, same `exp`); only the denominator's association
                // differs (lane partial sums), so outputs are ULP-bounded
                // against the reference.
                if n > 0 && c > 0 {
                    let policy = ChunkPolicy::min_chunk((SOFTMAX_GRAIN / c).max(1));
                    par_chunks_mut(&mut out, c, policy, |r0, band| {
                        for (ri, orow) in band.chunks_mut(c).enumerate() {
                            let row = &src[(r0 + ri) * c..(r0 + ri + 1) * c];
                            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                            for (o, &v) in orow.iter_mut().zip(row) {
                                *o = (v - m).exp();
                            }
                            let denom = blocked::sum_lanes(orow);
                            for o in orow.iter_mut() {
                                *o /= denom;
                            }
                        }
                    });
                }
            }
        }
        Tensor::from_vec(out, Shape::from([n, c]))
    }

    /// Numerically stable log-softmax along the last axis of a rank-2
    /// tensor. Used by the cross-entropy loss.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn log_softmax_rows(&self) -> Tensor {
        assert_eq!(
            self.rank(),
            2,
            "log_softmax_rows requires rank 2, got {}",
            self.shape()
        );
        let (n, c) = (self.dim(0), self.dim(1));
        let src = self.as_slice();
        let mut out = vec![0.0f32; n * c];
        match Backend::active() {
            Backend::Reference => {
                for r in 0..n {
                    let row = &src[r * c..(r + 1) * c];
                    let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    let log_denom: f32 = row.iter().map(|&v| (v - m).exp()).sum::<f32>().ln();
                    for j in 0..c {
                        out[r * c + j] = row[j] - m - log_denom;
                    }
                }
            }
            Backend::Blocked => {
                // Same structure as the blocked softmax: rows are
                // independent units, the denominator sum is lane-ordered.
                if n > 0 && c > 0 {
                    let policy = ChunkPolicy::min_chunk((SOFTMAX_GRAIN / c).max(1));
                    par_chunks_mut(&mut out, c, policy, |r0, band| {
                        for (ri, orow) in band.chunks_mut(c).enumerate() {
                            let row = &src[(r0 + ri) * c..(r0 + ri + 1) * c];
                            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                            for (o, &v) in orow.iter_mut().zip(row) {
                                *o = (v - m).exp();
                            }
                            let log_denom = blocked::sum_lanes(orow).ln();
                            for (o, &v) in orow.iter_mut().zip(row) {
                                *o = v - m - log_denom;
                            }
                        }
                    });
                }
            }
        }
        Tensor::from_vec(out, Shape::from([n, c]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_mean_max_min() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0, 4.0], [2, 2]);
        assert_eq!(t.sum(), 6.0);
        assert_eq!(t.mean(), 1.5);
        assert_eq!(t.max(), 4.0);
        assert_eq!(t.min(), -2.0);
    }

    #[test]
    fn sum_axis_0_and_1() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        assert_eq!(t.sum_axis(0).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(t.sum_axis(1).as_slice(), &[6.0, 15.0]);
    }

    #[test]
    fn sum_axis_middle_of_rank3() {
        let t = Tensor::arange(0.0, 1.0, 24).reshape([2, 3, 4]);
        let s = t.sum_axis(1);
        assert_eq!(s.dims(), &[2, 4]);
        // element [0,0] = t[0,0,0]+t[0,1,0]+t[0,2,0] = 0+4+8
        assert_eq!(s.at(&[0, 0]), 12.0);
        assert_eq!(s.at(&[1, 3]), (15 + 19 + 23) as f32);
    }

    #[test]
    fn mean_axis_divides() {
        let t = Tensor::from_vec(vec![2.0, 4.0, 6.0, 8.0], [2, 2]);
        assert_eq!(t.mean_axis(0).as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn argmax_variants() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.5], [3]);
        assert_eq!(t.argmax(), 1);
        let m = Tensor::from_vec(vec![0.1, 0.9, 0.5, 0.8, 0.2, 0.1], [2, 3]);
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn argmax_first_wins_on_ties() {
        let m = Tensor::from_vec(vec![0.5, 0.5, 0.2], [1, 3]);
        assert_eq!(m.argmax_rows(), vec![0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], [2, 3]);
        let s = t.softmax_rows();
        for r in 0..2 {
            let sum: f32 = (0..3).map(|c| s.at(&[r, c])).sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Large-logit row should be uniform, not NaN (stability check).
        assert!((s.at(&[1, 0]) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let t = Tensor::from_vec(vec![0.5, -1.0, 2.0], [1, 3]);
        let ls = t.log_softmax_rows();
        let s = t.softmax_rows();
        for c in 0..3 {
            assert!((ls.at(&[0, c]) - s.at(&[0, c]).ln()).abs() < 1e-5);
        }
    }
}
