//! Shapes, strides and broadcasting rules for dense tensors.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The dimensions of a dense, row-major tensor.
///
/// A `Shape` is an ordered list of extents. The empty list denotes a scalar.
/// Shapes are small value types: cheap to clone, comparable, hashable.
///
/// # Examples
///
/// ```
/// use stsl_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from its extents.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape(dims)
    }

    /// The scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of extents; 1 for a scalar).
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// Whether the shape contains zero elements (some extent is 0).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Extent of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Row-major (C-order) strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds (debug builds check bounds; release builds check rank only).
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.rank(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.rank()
        );
        let mut off = 0;
        let mut stride = 1;
        for i in (0..self.rank()).rev() {
            debug_assert!(
                index[i] < self.0[i],
                "index {} out of bounds for dim {} of extent {}",
                index[i],
                i,
                self.0[i]
            );
            off += index[i] * stride;
            stride *= self.0[i];
        }
        off
    }

    /// Converts a flat row-major offset back to a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= self.len()`.
    pub fn unravel(&self, mut offset: usize) -> Vec<usize> {
        assert!(
            offset < self.len().max(1),
            "offset {} out of bounds for shape of {} elements",
            offset,
            self.len()
        );
        let mut idx = vec![0; self.rank()];
        for i in (0..self.rank()).rev() {
            idx[i] = offset % self.0[i];
            offset /= self.0[i];
        }
        idx
    }

    /// Computes the shape two operands broadcast to under NumPy rules, or
    /// `None` if they are incompatible.
    ///
    /// Trailing dimensions are aligned; each pair of extents must be equal
    /// or one of them must be 1.
    pub fn broadcast(&self, other: &Shape) -> Option<Shape> {
        let rank = self.rank().max(other.rank());
        let mut dims = vec![0; rank];
        #[allow(clippy::needless_range_loop)] // symmetric index math reads better
        for i in 0..rank {
            let a = if i < rank - self.rank() {
                1
            } else {
                self.0[i - (rank - self.rank())]
            };
            let b = if i < rank - other.rank() {
                1
            } else {
                other.0[i - (rank - other.rank())]
            };
            if a == b {
                dims[i] = a;
            } else if a == 1 {
                dims[i] = b;
            } else if b == 1 {
                dims[i] = a;
            } else {
                return None;
            }
        }
        Some(Shape(dims))
    }

    /// Removes the dimension at `axis`, returning the reduced shape.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn remove_axis(&self, axis: usize) -> Shape {
        assert!(axis < self.rank(), "axis {} out of range", axis);
        let mut dims = self.0.clone();
        dims.remove(axis);
        Shape(dims)
    }

    /// Replaces the extent at `axis` with 1 (a kept reduced dimension).
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn keep_axis(&self, axis: usize) -> Shape {
        assert!(axis < self.rank(), "axis {} out of range", axis);
        let mut dims = self.0.clone();
        dims[axis] = 1;
        Shape(dims)
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "×")?;
            }
            write!(f, "{}", d)?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

impl AsRef<[usize]> for Shape {
    fn as_ref(&self) -> &[usize] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn len_is_product_of_dims() {
        assert_eq!(Shape::from([2, 3, 4]).len(), 24);
        assert_eq!(Shape::from([7]).len(), 7);
        assert_eq!(Shape::from([3, 0, 5]).len(), 0);
    }

    #[test]
    fn zero_extent_is_empty() {
        assert!(Shape::from([3, 0]).is_empty());
        assert!(!Shape::from([3, 1]).is_empty());
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::from([2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::from([5]).strides(), vec![1]);
        assert_eq!(Shape::scalar().strides(), Vec::<usize>::new());
    }

    #[test]
    fn offset_roundtrips_with_unravel() {
        let s = Shape::from([2, 3, 4]);
        for flat in 0..s.len() {
            let idx = s.unravel(flat);
            assert_eq!(s.offset(&idx), flat);
        }
    }

    #[test]
    fn offset_of_first_and_last() {
        let s = Shape::from([2, 3]);
        assert_eq!(s.offset(&[0, 0]), 0);
        assert_eq!(s.offset(&[1, 2]), 5);
    }

    #[test]
    #[should_panic(expected = "index rank")]
    fn offset_rejects_wrong_rank() {
        Shape::from([2, 3]).offset(&[1]);
    }

    #[test]
    fn broadcast_equal_shapes() {
        let a = Shape::from([2, 3]);
        assert_eq!(a.broadcast(&a), Some(a.clone()));
    }

    #[test]
    fn broadcast_scalar_with_anything() {
        let a = Shape::from([2, 3]);
        assert_eq!(Shape::scalar().broadcast(&a), Some(a.clone()));
        assert_eq!(a.broadcast(&Shape::scalar()), Some(a));
    }

    #[test]
    fn broadcast_ones_expand() {
        let a = Shape::from([4, 1, 3]);
        let b = Shape::from([2, 1]);
        assert_eq!(a.broadcast(&b), Some(Shape::from([4, 2, 3])));
    }

    #[test]
    fn broadcast_incompatible_is_none() {
        assert_eq!(Shape::from([2, 3]).broadcast(&Shape::from([4, 3])), None);
    }

    #[test]
    fn remove_and_keep_axis() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.remove_axis(1), Shape::from([2, 4]));
        assert_eq!(s.keep_axis(1), Shape::from([2, 1, 4]));
    }

    #[test]
    fn display_uses_times_sign() {
        assert_eq!(Shape::from([2, 3]).to_string(), "[2×3]");
    }
}
