//! The dense tensor type.

use crate::{Shape, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major, heap-allocated tensor of `f32` elements.
///
/// `Tensor` is the workhorse value of the whole workspace: activations,
/// weights, gradients and images are all tensors. Data is always contiguous
/// in C order; views are materialized (this library favours simplicity and
/// predictable performance over zero-copy aliasing).
///
/// # Examples
///
/// ```
/// use stsl_tensor::Tensor;
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
/// let b = Tensor::full([2, 2], 10.0);
/// let c = &a + &b;
/// assert_eq!(c.as_slice(), &[11.0, 12.0, 13.0, 14.0]);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let len = shape.len();
        Tensor {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor of ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor where every element is `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let len = shape.len();
        Tensor {
            shape,
            data: vec![value; len],
        }
    }

    /// Creates a rank-0 tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// Creates a 1-d tensor of `n` evenly spaced values starting at `start`
    /// with step `step`.
    pub fn arange(start: f32, step: f32, n: usize) -> Self {
        let data = (0..n).map(|i| start + step * i as f32).collect();
        Tensor {
            shape: Shape::from(vec![n]),
            data,
        }
    }

    /// Creates a tensor from raw row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the number of elements implied
    /// by `shape`. Use [`Tensor::try_from_vec`] for a fallible variant.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Self {
        Tensor::try_from_vec(data, shape).expect("data length must match shape")
    }

    /// Creates a tensor from raw row-major data, checking the length.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLengthMismatch`] if the element count does
    /// not match the shape.
    pub fn try_from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Result<Self, TensorError> {
        let shape = shape.into();
        if data.len() != shape.len() {
            return Err(TensorError::DataLengthMismatch {
                got: data.len(),
                expected: shape.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor by evaluating `f` at every multi-index.
    pub fn from_fn(shape: impl Into<Shape>, mut f: impl FnMut(&[usize]) -> f32) -> Self {
        let shape = shape.into();
        let len = shape.len();
        let mut data = Vec::with_capacity(len);
        for flat in 0..len {
            let idx = shape.unravel(flat);
            data.push(f(&idx));
        }
        Tensor { shape, data }
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The extents of the tensor as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Extent of dimension `axis`.
    pub fn dim(&self, axis: usize) -> usize {
        self.shape.dim(axis)
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its raw data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank mismatches, or (debug builds) out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank mismatches, or (debug builds) out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// The single value of a rank-0 or single-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.len(),
            1,
            "item() requires a single-element tensor, got {}",
            self.shape
        );
        self.data[0]
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ. See [`Tensor::try_reshape`].
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        self.try_reshape(shape).expect("reshape length mismatch")
    }

    /// Fallible [`Tensor::reshape`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when element counts differ.
    pub fn try_reshape(&self, shape: impl Into<Shape>) -> Result<Tensor, TensorError> {
        let shape = shape.into();
        if shape.len() != self.len() {
            return Err(TensorError::LengthMismatch {
                from: self.shape.clone(),
                to: shape,
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// Flattens to rank 1.
    pub fn flatten(&self) -> Tensor {
        Tensor {
            shape: Shape::from(vec![self.len()]),
            data: self.data.clone(),
        }
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(
            self.rank(),
            2,
            "transpose requires rank 2, got {}",
            self.shape
        );
        let (r, c) = (self.dim(0), self.dim(1));
        let mut out = vec![0.0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor {
            shape: Shape::from([c, r]),
            data: out,
        }
    }

    /// Reorders dimensions according to `perm` (a permutation of `0..rank`).
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of the axes.
    pub fn permute(&self, perm: &[usize]) -> Tensor {
        assert_eq!(perm.len(), self.rank(), "permutation rank mismatch");
        let mut seen = vec![false; self.rank()];
        for &p in perm {
            assert!(
                p < self.rank() && !seen[p],
                "invalid permutation {:?}",
                perm
            );
            seen[p] = true;
        }
        let new_dims: Vec<usize> = perm.iter().map(|&p| self.dim(p)).collect();
        let new_shape = Shape::from(new_dims);
        let old_strides = self.shape.strides();
        let mut out = Vec::with_capacity(self.len());
        for flat in 0..self.len() {
            let new_idx = new_shape.unravel(flat);
            let mut old_off = 0;
            for (k, &p) in perm.iter().enumerate() {
                old_off += new_idx[k] * old_strides[p];
            }
            out.push(self.data[old_off]);
        }
        Tensor {
            shape: new_shape,
            data: out,
        }
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two tensors elementwise with broadcasting.
    ///
    /// # Panics
    ///
    /// Panics if the shapes cannot be broadcast together.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        self.try_zip_map(other, f).expect("broadcast mismatch")
    }

    /// Fallible [`Tensor::zip_map`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BroadcastMismatch`] if the shapes are
    /// incompatible.
    pub fn try_zip_map(
        &self,
        other: &Tensor,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor, TensorError> {
        if self.shape == other.shape {
            // Fast path: identical shapes need no index arithmetic.
            let data = self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect();
            return Ok(Tensor {
                shape: self.shape.clone(),
                data,
            });
        }
        let out_shape =
            self.shape
                .broadcast(&other.shape)
                .ok_or_else(|| TensorError::BroadcastMismatch {
                    lhs: self.shape.clone(),
                    rhs: other.shape.clone(),
                })?;
        let mut data = Vec::with_capacity(out_shape.len());
        let rank = out_shape.rank();
        let a_dims = self.shape.dims();
        let b_dims = other.shape.dims();
        let a_strides = self.shape.strides();
        let b_strides = other.shape.strides();
        let a_pad = rank - self.rank();
        let b_pad = rank - other.rank();
        for flat in 0..out_shape.len() {
            let idx = out_shape.unravel(flat);
            let mut a_off = 0;
            for d in 0..self.rank() {
                let coord = idx[d + a_pad];
                a_off += if a_dims[d] == 1 {
                    0
                } else {
                    coord * a_strides[d]
                };
            }
            let mut b_off = 0;
            for d in 0..other.rank() {
                let coord = idx[d + b_pad];
                b_off += if b_dims[d] == 1 {
                    0
                } else {
                    coord * b_strides[d]
                };
            }
            data.push(f(self.data[a_off], other.data[b_off]));
        }
        Ok(Tensor {
            shape: out_shape,
            data,
        })
    }

    /// Adds `scale * other` into `self` (both must have identical shapes).
    ///
    /// This is the hot in-place update used by optimizers (`w += -lr * g`).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, scale: f32, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "axpy requires identical shapes: {} vs {}",
            self.shape, other.shape
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Multiplies every element by `scale` in place.
    pub fn scale_inplace(&mut self, scale: f32) {
        for x in &mut self.data {
            *x *= scale;
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// Extracts the `i`-th slice along axis 0 (e.g. one sample of a batch).
    ///
    /// # Panics
    ///
    /// Panics for rank-0 tensors or `i` out of bounds.
    pub fn index_axis0(&self, i: usize) -> Tensor {
        assert!(self.rank() >= 1, "index_axis0 requires rank >= 1");
        assert!(
            i < self.dim(0),
            "index {} out of bounds for axis 0 of {}",
            i,
            self.shape
        );
        let sub_shape = self.shape.remove_axis(0);
        let stride = sub_shape.len();
        let data = self.data[i * stride..(i + 1) * stride].to_vec();
        Tensor {
            shape: sub_shape,
            data,
        }
    }

    /// Stacks rank-`r` tensors into a rank-`r+1` tensor along a new axis 0.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or shapes differ.
    pub fn stack(parts: &[Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "stack requires at least one tensor");
        let sub = parts[0].shape.clone();
        let mut data = Vec::with_capacity(parts.len() * sub.len());
        for p in parts {
            assert_eq!(p.shape, sub, "stack requires identical shapes");
            data.extend_from_slice(&p.data);
        }
        let mut dims = vec![parts.len()];
        dims.extend_from_slice(sub.dims());
        Tensor {
            shape: Shape::from(dims),
            data,
        }
    }

    /// Concatenates tensors along axis 0 (all other extents must match).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or trailing shapes differ.
    pub fn concat0(parts: &[Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat0 requires at least one tensor");
        let tail = parts[0].shape.remove_axis(0);
        let mut n0 = 0;
        let mut data = Vec::new();
        for p in parts {
            assert_eq!(
                p.shape.remove_axis(0),
                tail,
                "concat0 trailing shape mismatch"
            );
            n0 += p.dim(0);
            data.extend_from_slice(&p.data);
        }
        let mut dims = vec![n0];
        dims.extend_from_slice(tail.dims());
        Tensor {
            shape: Shape::from(dims),
            data,
        }
    }

    /// Squared L2 norm of all elements.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Returns true when every element of `self` is within `tol` of the
    /// corresponding element of `other` (shapes must match exactly).
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs())))
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::scalar(0.0)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const PREVIEW: usize = 8;
        write!(f, "Tensor({}, [", self.shape)?;
        for (i, x) in self.data.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{:.4}", x)?;
        }
        if self.len() > PREVIEW {
            write!(f, ", …")?;
        }
        write!(f, "])")
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl std::ops::$trait for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: &Tensor) -> Tensor {
                self.zip_map(rhs, |a, b| a $op b)
            }
        }
        impl std::ops::$trait<f32> for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: f32) -> Tensor {
                self.map(|a| a $op rhs)
            }
        }
    };
}

impl_binop!(Add, add, +);
impl_binop!(Sub, sub, -);
impl_binop!(Mul, mul, *);
impl_binop!(Div, div, /);

impl std::ops::Neg for &Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        self.map(|a| -a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros([2, 2]).as_slice(), &[0.0; 4]);
        assert_eq!(Tensor::ones([3]).as_slice(), &[1.0; 3]);
        assert_eq!(Tensor::full([2], 7.5).as_slice(), &[7.5, 7.5]);
    }

    #[test]
    fn arange_generates_sequence() {
        let t = Tensor::arange(1.0, 0.5, 4);
        assert_eq!(t.as_slice(), &[1.0, 1.5, 2.0, 2.5]);
    }

    #[test]
    fn from_fn_uses_indices() {
        let t = Tensor::from_fn([2, 3], |idx| (idx[0] * 10 + idx[1]) as f32);
        assert_eq!(t.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn try_from_vec_checks_length() {
        assert!(Tensor::try_from_vec(vec![1.0; 5], [2, 3]).is_err());
        assert!(Tensor::try_from_vec(vec![1.0; 6], [2, 3]).is_ok());
    }

    #[test]
    fn at_and_set_roundtrip() {
        let mut t = Tensor::zeros([2, 3]);
        t.set(&[1, 2], 9.0);
        assert_eq!(t.at(&[1, 2]), 9.0);
        assert_eq!(t.as_slice()[5], 9.0);
    }

    #[test]
    fn item_on_scalar() {
        assert_eq!(Tensor::scalar(3.0).item(), 3.0);
    }

    #[test]
    #[should_panic(expected = "single-element")]
    fn item_panics_on_vector() {
        Tensor::zeros([2]).item();
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::arange(0.0, 1.0, 6).reshape([2, 3]);
        assert_eq!(t.dims(), &[2, 3]);
        assert_eq!(t.at(&[1, 0]), 3.0);
    }

    #[test]
    fn try_reshape_rejects_bad_length() {
        assert!(Tensor::zeros([4]).try_reshape([3]).is_err());
    }

    #[test]
    fn transpose_2d() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let tt = t.transpose();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.as_slice(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let t = Tensor::arange(0.0, 1.0, 12).reshape([3, 4]);
        assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn permute_matches_transpose_for_2d() {
        let t = Tensor::arange(0.0, 1.0, 6).reshape([2, 3]);
        assert_eq!(t.permute(&[1, 0]), t.transpose());
    }

    #[test]
    fn permute_nchw_to_nhwc() {
        let t = Tensor::arange(0.0, 1.0, 2 * 3 * 4 * 5).reshape([2, 3, 4, 5]);
        let p = t.permute(&[0, 2, 3, 1]);
        assert_eq!(p.dims(), &[2, 4, 5, 3]);
        assert_eq!(p.at(&[1, 2, 3, 1]), t.at(&[1, 1, 2, 3]));
    }

    #[test]
    fn broadcast_add_row_vector() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let b = Tensor::from_vec(vec![10.0, 20.0, 30.0], [3]);
        let c = &a + &b;
        assert_eq!(c.as_slice(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
    }

    #[test]
    fn broadcast_add_column_vector() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::from_vec(vec![1.0, 2.0], [2, 1]);
        let c = &a + &b;
        assert_eq!(c.as_slice(), &[1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn scalar_ops() {
        let a = Tensor::from_vec(vec![2.0, 4.0], [2]);
        assert_eq!((&a * 0.5).as_slice(), &[1.0, 2.0]);
        assert_eq!((&a - 1.0).as_slice(), &[1.0, 3.0]);
        assert_eq!((-&a).as_slice(), &[-2.0, -4.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones([3]);
        let g = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]);
        a.axpy(-0.5, &g);
        assert_eq!(a.as_slice(), &[0.5, 0.0, -0.5]);
    }

    #[test]
    fn index_axis0_extracts_sample() {
        let t = Tensor::arange(0.0, 1.0, 12).reshape([3, 2, 2]);
        let s = t.index_axis0(1);
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.as_slice(), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn stack_adds_leading_axis() {
        let a = Tensor::ones([2]);
        let b = Tensor::zeros([2]);
        let s = Tensor::stack(&[a, b]);
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.as_slice(), &[1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn concat0_joins_batches() {
        let a = Tensor::ones([1, 2]);
        let b = Tensor::zeros([2, 2]);
        let c = Tensor::concat0(&[a, b]);
        assert_eq!(c.dims(), &[3, 2]);
    }

    #[test]
    fn allclose_tolerates_small_differences() {
        let a = Tensor::ones([3]);
        let mut b = Tensor::ones([3]);
        b.as_mut_slice()[0] += 1e-7;
        assert!(a.allclose(&b, 1e-5));
        b.as_mut_slice()[0] += 1.0;
        assert!(!a.allclose(&b, 1e-5));
    }

    #[test]
    fn serde_roundtrip() {
        let t = Tensor::arange(0.0, 1.0, 6).reshape([2, 3]);
        let json = serde_json::to_string(&t).unwrap();
        let back: Tensor = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn debug_is_nonempty_and_truncated() {
        let t = Tensor::zeros([100]);
        let s = format!("{:?}", t);
        assert!(s.contains("…"));
        assert!(!s.is_empty());
    }
}
