//! Property-based tests for tensor invariants.

use proptest::prelude::*;
use stsl_tensor::init::rng_from_seed;
use stsl_tensor::ops::conv::{col2im, im2col, ConvSpec};
use stsl_tensor::ops::pool::{maxpool2d_backward, maxpool2d_forward};
use stsl_tensor::{Shape, Tensor};

fn small_dims() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..5, 0..4)
}

fn tensor_with_shape(dims: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let len = dims.iter().product::<usize>().max(1);
    prop::collection::vec(-100.0f32..100.0, len..=len)
        .prop_map(move |data| Tensor::from_vec(data, dims.clone()))
}

proptest! {
    #[test]
    fn offset_unravel_roundtrip(dims in small_dims()) {
        let s = Shape::from(dims);
        for flat in 0..s.len() {
            let idx = s.unravel(flat);
            prop_assert_eq!(s.offset(&idx), flat);
        }
    }

    #[test]
    fn broadcast_is_commutative(a in small_dims(), b in small_dims()) {
        let sa = Shape::from(a);
        let sb = Shape::from(b);
        prop_assert_eq!(sa.broadcast(&sb), sb.broadcast(&sa));
    }

    #[test]
    fn broadcast_with_self_is_identity(dims in small_dims()) {
        let s = Shape::from(dims);
        prop_assert_eq!(s.broadcast(&s), Some(s.clone()));
    }

    #[test]
    fn add_commutes(
        (a, b) in small_dims().prop_flat_map(|dims| (tensor_with_shape(dims.clone()), tensor_with_shape(dims)))
    ) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn sum_axis_preserves_total(
        d0 in 1usize..5, d1 in 1usize..5, d2 in 1usize..5, seed in 0u64..1000
    ) {
        let t = Tensor::randn([d0, d1, d2], &mut rng_from_seed(seed));
        for axis in 0..3 {
            let reduced = t.sum_axis(axis);
            prop_assert!((reduced.sum() - t.sum()).abs() < 1e-3 * (1.0 + t.sum().abs()));
        }
    }

    #[test]
    fn softmax_rows_are_distributions(n in 1usize..6, c in 1usize..8, seed in 0u64..1000) {
        let t = Tensor::randn([n, c], &mut rng_from_seed(seed));
        let s = t.softmax_rows();
        for r in 0..n {
            let row_sum: f32 = (0..c).map(|j| s.at(&[r, j])).sum();
            prop_assert!((row_sum - 1.0).abs() < 1e-4);
            for j in 0..c {
                prop_assert!(s.at(&[r, j]) >= 0.0);
            }
        }
    }

    #[test]
    fn matmul_distributes_over_addition(m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..500) {
        let mut rng = rng_from_seed(seed);
        let a = Tensor::randn([m, k], &mut rng);
        let b = Tensor::randn([k, n], &mut rng);
        let c = Tensor::randn([k, n], &mut rng);
        let lhs = a.matmul(&(&b + &c));
        let rhs = &a.matmul(&b) + &a.matmul(&c);
        prop_assert!(lhs.allclose(&rhs, 1e-3));
    }

    #[test]
    fn matmul_associates_with_scalar(m in 1usize..5, k in 1usize..5, seed in 0u64..500, s in -3.0f32..3.0) {
        let mut rng = rng_from_seed(seed);
        let a = Tensor::randn([m, k], &mut rng);
        let b = Tensor::randn([k, m], &mut rng);
        let lhs = (&a * s).matmul(&b);
        let rhs = &a.matmul(&b) * s;
        prop_assert!(lhs.allclose(&rhs, 1e-3));
    }

    #[test]
    fn transpose_is_involution(m in 1usize..8, n in 1usize..8, seed in 0u64..500) {
        let t = Tensor::randn([m, n], &mut rng_from_seed(seed));
        prop_assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn im2col_col2im_adjoint(
        n in 1usize..3, c in 1usize..3, hw in 3usize..7, k in 1usize..4, seed in 0u64..300
    ) {
        let spec = ConvSpec::same(k);
        let mut rng = rng_from_seed(seed);
        let x = Tensor::randn([n, c, hw, hw], &mut rng);
        let cx = im2col(&x, spec);
        let y = Tensor::randn(cx.dims().to_vec(), &mut rng);
        let lhs: f32 = cx.as_slice().iter().zip(y.as_slice()).map(|(a, b)| a * b).sum();
        let folded = col2im(&y, n, c, hw, hw, spec);
        let rhs: f32 = x.as_slice().iter().zip(folded.as_slice()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    #[test]
    fn maxpool_output_bounded_by_input(n in 1usize..3, c in 1usize..3, hw in 2usize..8, seed in 0u64..300) {
        let x = Tensor::randn([n, c, hw, hw], &mut rng_from_seed(seed));
        let spec = ConvSpec { kh: 2, kw: 2, stride: 2, pad: 0 };
        if spec.output_hw(hw, hw).is_none() { return Ok(()); }
        let p = maxpool2d_forward(&x, spec);
        prop_assert!(p.output.max() <= x.max() + 1e-6);
        prop_assert!(p.output.min() >= x.min() - 1e-6);
    }

    #[test]
    fn maxpool_gradient_is_sparse_and_conservative(hw in 2usize..8, seed in 0u64..300) {
        let x = Tensor::randn([1, 1, hw, hw], &mut rng_from_seed(seed));
        let spec = ConvSpec { kh: 2, kw: 2, stride: 2, pad: 0 };
        let p = maxpool2d_forward(&x, spec);
        let dout = Tensor::ones(p.output.dims().to_vec());
        let dx = maxpool2d_backward(&dout, &p.argmax, x.len());
        // Total gradient mass is conserved...
        prop_assert!((dx.sum() - dout.sum()).abs() < 1e-4);
        // ...and lands on at most one input per window.
        let nonzero = dx.as_slice().iter().filter(|&&v| v != 0.0).count();
        prop_assert!(nonzero <= dout.len());
    }

    #[test]
    fn reshape_preserves_sum(dims in small_dims(), seed in 0u64..300) {
        let len: usize = dims.iter().product::<usize>().max(1);
        let t = Tensor::randn(dims.clone(), &mut rng_from_seed(seed));
        let flat = t.reshape([len.max(1)]);
        prop_assert!((flat.sum() - t.sum()).abs() < 1e-4 * (1.0 + t.sum().abs()));
    }
}
