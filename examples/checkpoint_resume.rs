//! Checkpointing a federated deployment and resuming it later.
//!
//! Hospitals train for a few epochs, the whole deployment (server upper
//! model + every hospital's private lower model) is checkpointed to JSON,
//! a fresh deployment restores it, and training continues seamlessly.
//!
//! ```text
//! cargo run --release --example checkpoint_resume
//! ```

use stsl_data::SyntheticCifar;
use stsl_split::{Checkpoint, CnnArch, CutPoint, SpatioTemporalTrainer, SplitConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train = SyntheticCifar::new(77)
        .difficulty(0.1)
        .generate_sized(400, 16);
    let test = SyntheticCifar::new(78)
        .difficulty(0.1)
        .generate_sized(100, 16);
    let config = SplitConfig::new(CutPoint(1), 2)
        .arch(CnnArch::tiny())
        .epochs(2)
        .seed(5);

    // Phase 1: train two epochs and checkpoint.
    let mut phase1 = SpatioTemporalTrainer::new(config.clone(), &train)?;
    let r1 = phase1.train(&test);
    println!(
        "phase 1: accuracy after {} epochs = {:.1}%",
        r1.epochs.len(),
        r1.final_accuracy * 100.0
    );
    let ckpt = phase1.checkpoint();
    let path = std::env::temp_dir().join("stsl_demo_checkpoint.json");
    ckpt.save(&path)?;
    println!("checkpointed deployment to {}", path.display());

    // Phase 2: a brand-new process would do exactly this.
    let loaded = Checkpoint::load(&path)?;
    let mut phase2 = SpatioTemporalTrainer::new(loaded.config.clone(), &train)?;
    println!(
        "fresh deployment before restore: {:.1}%",
        phase2.evaluate(&test) * 100.0
    );
    phase2.restore(&loaded)?;
    println!(
        "after restore:                   {:.1}% (matches phase 1)",
        phase2.evaluate(&test) * 100.0
    );

    // Continue training from the restored state.
    for epoch in 2..4 {
        let (loss, _) = phase2.run_epoch(epoch);
        println!(
            "resumed epoch {}: loss {:.3}, accuracy {:.1}%",
            epoch,
            loss,
            phase2.evaluate(&test) * 100.0
        );
    }
    std::fs::remove_file(&path).ok();
    Ok(())
}
