//! Geo-distributed medical scenario: four hospitals on three continents
//! share one centralized server in Seoul, over a simulated WAN.
//!
//! This is the paper's motivating deployment (§I: distributed medical
//! systems whose patient data is legally confined on premises) run on the
//! discrete-event network simulator: propagation latency is derived from
//! real great-circle distances, and the server's arrival queue is
//! scheduled round-robin so far-away hospitals are not starved (§II).
//!
//! ```text
//! cargo run --release --example geo_hospitals
//! ```

use stsl_data::SyntheticCifar;
use stsl_simnet::{GeoPoint, StarTopology};
use stsl_split::{
    AsyncSplitTrainer, CnnArch, ComputeModel, CutPoint, SchedulingPolicy, SplitConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The centralized server sits in Seoul (the authors' institution).
    let server = GeoPoint::new(37.57, 126.98);
    let sites = vec![
        (
            "seoul-national-hospital".to_string(),
            GeoPoint::new(37.58, 127.00),
        ),
        (
            "tokyo-medical-center".to_string(),
            GeoPoint::new(35.68, 139.69),
        ),
        ("berlin-charite".to_string(), GeoPoint::new(52.52, 13.40)),
        ("boston-general".to_string(), GeoPoint::new(42.36, -71.06)),
    ];
    let topology = StarTopology::from_geo(server, &sites, 100.0);
    println!("WAN topology (one-way propagation latency to the Seoul server):");
    for id in topology.ids() {
        println!(
            "  {:<26} {}",
            topology.label(id),
            topology.link(id).latency.mean()
        );
    }

    let train = SyntheticCifar::new(1)
        .difficulty(0.1)
        .generate_sized(480, 16);
    let test = SyntheticCifar::new(2)
        .difficulty(0.1)
        .generate_sized(120, 16);
    let config = SplitConfig::new(CutPoint(1), sites.len())
        .arch(CnnArch::tiny())
        .epochs(3)
        .batch_size(16)
        .seed(11);

    let mut trainer = AsyncSplitTrainer::new(
        config,
        &train,
        topology,
        SchedulingPolicy::RoundRobin,
        ComputeModel::default(),
    )?;
    let report = trainer.run(&test);

    println!("\nsimulated training time: {:.2} s", report.sim_seconds);
    println!("final accuracy: {:.1}%", report.final_accuracy * 100.0);
    println!(
        "server queue: mean depth {:.2}, max {}, mean wait {:.1} ms",
        report.mean_queue_depth, report.max_queue_depth, report.mean_queue_wait_ms
    );
    println!(
        "batches served per hospital: {:?} (imbalance {:.3} — round-robin keeps this fair)",
        report.served_per_client, report.service_imbalance
    );
    println!(
        "traffic: {:.2} MB up / {:.2} MB down",
        report.comm.uplink_bytes as f64 / 1e6,
        report.comm.downlink_bytes as f64 / 1e6
    );
    Ok(())
}
