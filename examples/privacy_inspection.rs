//! What does the server actually see? (Paper Fig. 4, interactively.)
//!
//! Trains an end-system, then for one sample image prints the
//! structural-similarity of each captured stage to the original, writes
//! the Fig. 4 triptych as a PPM, and mounts the inversion attack at two
//! cut depths to show the privacy side of the cut-depth trade-off.
//!
//! ```text
//! cargo run --release --example privacy_inspection
//! ```

use stsl_data::SyntheticCifar;
use stsl_privacy::measure_leakage;
use stsl_privacy::visualize::{capture_stages, fig4_triptych, stage_similarity};
use stsl_split::{CnnArch, CutPoint, SpatioTemporalTrainer, SplitConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train = SyntheticCifar::new(5)
        .difficulty(0.08)
        .generate_sized(400, 16);
    let test = SyntheticCifar::new(6)
        .difficulty(0.08)
        .generate_sized(60, 16);

    // Train one end-system with L1 private.
    let config = SplitConfig::new(CutPoint(1), 1)
        .arch(CnnArch::tiny())
        .epochs(2)
        .seed(3);
    let mut trainer = SpatioTemporalTrainer::new(config, &train)?;
    trainer.train(&test);

    // Capture every stage of the private encoder for one image.
    let image = test.image(0);
    let client = trainer.clients_mut().first_mut().expect("one client");
    println!("stage similarity to the original image (1.0 = fully visible):");
    let stages = capture_stages(client.model_mut(), &image);
    for stage in &stages {
        println!(
            "  {:<12} {:>5.3}   shape {:?}",
            stage.label,
            stage_similarity(&image, &stage.activation),
            stage.activation.dims()
        );
    }

    // Write the Fig. 4 triptych: original | conv(L1) | L1 (conv+pool).
    let out = std::path::Path::new("results");
    std::fs::create_dir_all(out)?;
    let path = out.join("privacy_inspection_triptych.ppm");
    fig4_triptych(client.model_mut(), &image, 6).save_ppm(&path)?;
    println!(
        "\nwrote {} — compare the three panels as in the paper's Fig. 4",
        path.display()
    );

    // Quantify with the inversion attack at two depths.
    let aux = SyntheticCifar::new(9)
        .difficulty(0.08)
        .generate_sized(300, 16);
    let victims = SyntheticCifar::new(10)
        .difficulty(0.08)
        .generate_sized(30, 16);
    let shallow = measure_leakage(|x| client.encode(x), &aux, &victims, 8, 0);
    println!(
        "\ninversion attack vs this L1 encoder: psnr {:.1} dB, ssim {:.3}, dcor {:.3}",
        shallow.psnr_db, shallow.ssim, shallow.dcor
    );
    println!("(run `cargo run -p stsl-bench --release --bin leakage_sweep` for the full E3 sweep)");
    Ok(())
}
