//! Quickstart: train a spatio-temporal split-learning system end to end.
//!
//! Three hospitals each keep block `L1` of the CNN (and their data)
//! private; one centralized server trains the shared upper layers on all
//! of their smashed activations.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use stsl_data::SyntheticCifar;
use stsl_split::{CnnArch, CutPoint, SpatioTemporalTrainer, SplitConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Data. Three hospitals' worth of a 10-class image task (stand-in
    //    for CIFAR-10; see DESIGN.md §2). Fully deterministic per seed.
    let train = SyntheticCifar::new(42)
        .difficulty(0.1)
        .generate_sized(600, 16);
    let test = SyntheticCifar::new(43)
        .difficulty(0.1)
        .generate_sized(150, 16);

    // 2. Configuration: cut after L1, three end-systems, shrunken
    //    architecture so this example finishes in seconds.
    let config = SplitConfig::new(CutPoint(1), 3)
        .arch(CnnArch::tiny())
        .epochs(5)
        .batch_size(16)
        .learning_rate(0.01)
        .seed(7);

    // 3. Train. Each end-system's L1 is privately initialized and never
    //    shared; the server sees only smashed activations.
    let mut trainer = SpatioTemporalTrainer::new(config, &train)?;
    let report = trainer.train(&test);

    // 4. Inspect.
    println!("cut: {}", report.label);
    for e in &report.epochs {
        println!(
            "epoch {}: loss {:.3}, train acc {:.1}%, test acc {:.1}%",
            e.epoch,
            e.train_loss,
            e.train_accuracy * 100.0,
            e.test_accuracy * 100.0
        );
    }
    println!(
        "final accuracy {:.1}% (per hospital: {})",
        report.final_accuracy * 100.0,
        report
            .per_client_accuracy
            .iter()
            .map(|a| format!("{:.1}%", a * 100.0))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "communication: {:.2} MB up, {:.2} MB down — and no raw image ever left a hospital",
        report.comm.uplink_bytes as f64 / 1e6,
        report.comm.downlink_bytes as f64 / 1e6
    );
    Ok(())
}
