//! Comparing arrival-queue scheduling policies under latency skew.
//!
//! §II of the paper: far-away end-systems arrive "lately or sparsely" and
//! can bias learning, so "parameter scheduling is required". Four
//! end-systems sit 1–40 ms from a saturated server: under a fixed
//! simulated-time budget FIFO serves near sites proportionally more,
//! round-robin rebalances toward the starved far sites, and
//! staleness-drop bounds how old a served batch can be.
//!
//! ```text
//! cargo run --release --example scheduling_policies
//! ```

use stsl_data::SyntheticCifar;
use stsl_simnet::{SimDuration, StarTopology};
use stsl_split::{
    AsyncSplitTrainer, CnnArch, ComputeModel, CutPoint, SchedulingPolicy, SplitConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train = SyntheticCifar::new(20)
        .difficulty(0.1)
        .generate_sized(320, 16);
    let test = SyntheticCifar::new(21)
        .difficulty(0.1)
        .generate_sized(80, 16);

    // Four end-systems spread from 1 ms to 40 ms, and a server slow enough
    // to be the bottleneck — the regime where a queue forms and the
    // scheduling policy actually gets to choose between waiting batches.
    let topology = StarTopology::latency_gradient(4, 1.0, 40.0, 100.0);
    let compute = ComputeModel {
        client_batch: SimDuration::from_millis(4),
        server_batch: SimDuration::from_millis(12),
        retry_timeout: SimDuration::from_millis(400),
    };

    let policies = [
        SchedulingPolicy::Fifo,
        SchedulingPolicy::RoundRobin,
        SchedulingPolicy::StalenessDrop {
            max_age: SimDuration::from_millis(120),
        },
    ];
    println!(
        "{:<24} {:>22} {:>10} {:>7} {:>9}",
        "policy", "served per site", "imbalance", "drops", "accuracy"
    );
    for policy in policies {
        // Many epochs under a fixed 5-second simulated budget: per-client
        // service counts then reflect service *rates*, which is where the
        // policies differ (run-to-completion serves everything eventually).
        let config = SplitConfig::new(CutPoint(1), 4)
            .arch(CnnArch::tiny())
            .epochs(1_000)
            .batch_size(16)
            .seed(9);
        let mut trainer =
            AsyncSplitTrainer::new(config, &train, topology.clone(), policy, compute)?;
        let r = trainer.run_with_budget(&test, Some(SimDuration::from_millis(5_000)));
        let served = r
            .served_per_client
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join("/");
        println!(
            "{:<24} {:>22} {:>10.3} {:>7} {:>8.1}%",
            r.policy,
            served,
            r.service_imbalance,
            r.scheduler_drops,
            r.final_accuracy * 100.0
        );
    }
    println!("\nsee `cargo run -p stsl-bench --release --bin queue_sweep` for the full E4 sweep");
    Ok(())
}
