#!/usr/bin/env python3
"""Soft speedup-regression gate over results/parallel.json.

Reads the stsl-results/v1 envelope written by the `parallel_speedup`
bench and enforces the scaling floor for the blocked backend's large
GEMM: with 4 requested threads it must reach at least MIN_SPEEDUP x over
the same backend's serial run.

The gate is *host-conditional*: parallel speedup is only a meaningful
signal when the runner actually has >= 4 hardware threads. On smaller
hosts (including 1-core containers, where oversubscribed rows measure
scheduling overhead) the gate SKIPS and logs the reason instead of
failing, matching the bench's own per-row oversubscription warnings.

Exit codes: 0 = pass or skip-with-reason, 1 = regression or malformed
results file.

Usage: python3 scripts/check_speedup.py [results/parallel.json]
"""

import json
import sys

MIN_SPEEDUP = 2.0
WORKLOAD = "gemm_large"
BACKEND = "blocked"
THREADS = 4
MIN_HARDWARE_THREADS = 4


def fail(msg: str) -> None:
    print(f"speedup-gate: FAIL: {msg}")
    sys.exit(1)


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else "results/parallel.json"
    try:
        with open(path, encoding="utf-8") as fh:
            envelope = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"cannot read {path}: {exc}")

    if envelope.get("schema") != "stsl-results/v1":
        fail(f"unexpected schema {envelope.get('schema')!r} in {path}")
    data = envelope.get("data", {})
    hardware = data.get("hardware_threads")
    rows = data.get("rows", [])
    if not isinstance(hardware, int) or not rows:
        fail(f"{path} is missing hardware_threads or rows")

    for warning in data.get("warnings", []):
        print(f"speedup-gate: bench warning: {warning}")

    if hardware < MIN_HARDWARE_THREADS:
        print(
            f"speedup-gate: SKIP: runner exposes {hardware} hardware "
            f"thread(s) < {MIN_HARDWARE_THREADS}; {THREADS}-thread speedup "
            "measures scheduling overhead on this host, not parallel "
            "scaling, so the gate is not applicable"
        )
        sys.exit(0)

    row = next(
        (
            r
            for r in rows
            if r.get("workload") == WORKLOAD
            and r.get("backend") == BACKEND
            and r.get("threads_requested") == THREADS
        ),
        None,
    )
    if row is None:
        fail(
            f"no row for workload={WORKLOAD} backend={BACKEND} "
            f"threads_requested={THREADS} in {path}"
        )
    granted = row.get("threads_granted")
    if granted != THREADS:
        fail(
            f"thread budget was capped: requested {THREADS}, granted "
            f"{granted} — the speedup measurement is invalid"
        )

    speedup = row.get("speedup_vs_serial", 0.0)
    print(
        f"speedup-gate: {WORKLOAD} [{BACKEND}] at {THREADS} threads: "
        f"{speedup:.2f}x vs serial (floor {MIN_SPEEDUP:.1f}x, "
        f"{hardware} hardware threads)"
    )
    if speedup < MIN_SPEEDUP:
        fail(
            f"{THREADS}-thread {WORKLOAD} speedup {speedup:.2f}x is below "
            f"the {MIN_SPEEDUP:.1f}x floor on a {hardware}-thread runner"
        )
    print("speedup-gate: PASS")


if __name__ == "__main__":
    main()
