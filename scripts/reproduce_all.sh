#!/usr/bin/env bash
# Regenerates every table and figure of the paper (DESIGN.md §4).
# Results land in results/ as JSON + PPM; logs are teed alongside.
#
# Usage:
#   scripts/reproduce_all.sh           # standard scale (~1 h on one core)
#   scripts/reproduce_all.sh --quick   # smoke run (~1 min)
set -euo pipefail
cd "$(dirname "$0")/.."
MODE="${1:-}"

cargo build --release -p stsl-bench --bins

run() {
  local bin="$1"
  echo "=== $bin $MODE ==="
  "./target/release/$bin" $MODE 2>&1 | tee "results/$bin.log"
}

mkdir -p results
run table1          # Table I — accuracy vs cut depth
run fig4            # Fig. 4 — activation capture triptychs
run leakage_sweep   # E3 — inversion leakage vs cut depth
run queue_sweep     # E4 — queueing & scheduling (§II)
run scale_sweep     # E5 — N=1 (Fig. 1) … N=16 (Fig. 2)
run comm_cost       # E6 — bytes vs FedAvg vs raw upload
run noise_ablation  # E7 — Gaussian defense trade-off
run ushaped_compare # E8 — label-private U-shaped protocol
run pool_ablation   # E9 — max vs avg pooling privacy

echo "all experiments done; see results/ and EXPERIMENTS.md"
