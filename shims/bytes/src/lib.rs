//! Workspace-local stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`] (an immutable buffer with a read cursor), [`BytesMut`]
//! (a growable write buffer) and the slices of the [`Buf`]/[`BufMut`] traits
//! the workspace's wire protocol uses. Backed by plain `Vec<u8>`; no
//! reference-counted zero-copy splitting, which the workspace does not need.

#![forbid(unsafe_code)]

/// Immutable byte buffer with an internal read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    cursor: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps an owned byte vector.
    pub fn from_vec(data: Vec<u8>) -> Self {
        Bytes { data, cursor: 0 }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from_vec(data.to_vec())
    }

    /// Total length of the buffer (independent of the read cursor).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the buffer holds no bytes at all.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The bytes not yet consumed by `get_*` calls.
    pub fn as_unread(&self) -> &[u8] {
        &self.data[self.cursor..]
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(
            self.cursor + n <= self.data.len(),
            "buffer underflow: need {} bytes, have {}",
            n,
            self.data.len() - self.cursor
        );
        let slice = &self.data[self.cursor..self.cursor + n];
        self.cursor += n;
        slice
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes::from_vec(data)
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Growable byte buffer for encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with the given capacity reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.data)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read side: consuming primitive values from a buffer.
///
/// # Panics
///
/// All `get_*` methods panic on underflow, matching the upstream crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Consumes `n` bytes and returns them.
    fn copy_bytes(&mut self, n: usize) -> Vec<u8>;

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.copy_bytes(1)[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let b = self.copy_bytes(2);
        u16::from_le_bytes([b[0], b[1]])
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let b = self.copy_bytes(4);
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let b = self.copy_bytes(8);
        u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.cursor
    }

    fn copy_bytes(&mut self, n: usize) -> Vec<u8> {
        self.take(n).to_vec()
    }
}

/// Write side: appending primitive values to a buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16_le(300);
        buf.put_u32_le(70_000);
        buf.put_u64_le(1 << 40);
        buf.put_f32_le(0.25);
        buf.put_f64_le(-1.5);
        assert_eq!(buf.len(), 1 + 2 + 4 + 8 + 4 + 8);

        let mut bytes = buf.freeze();
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u16_le(), 300);
        assert_eq!(bytes.get_u32_le(), 70_000);
        assert_eq!(bytes.get_u64_le(), 1 << 40);
        assert_eq!(bytes.get_f32_le(), 0.25);
        assert_eq!(bytes.get_f64_le(), -1.5);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut bytes = Bytes::from_vec(vec![1, 2]);
        let _ = bytes.get_u32_le();
    }

    #[test]
    fn len_counts_whole_buffer() {
        let mut bytes = Bytes::from_vec(vec![1, 2, 3, 4]);
        let _ = bytes.get_u8();
        assert_eq!(bytes.len(), 4);
        assert_eq!(bytes.remaining(), 3);
    }
}
