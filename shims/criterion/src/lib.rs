//! Workspace-local stand-in for `criterion`.
//!
//! A minimal wall-clock benchmark harness exposing the builder surface the
//! workspace's benches use (`benchmark_group`, `bench_function`,
//! `bench_with_input`, `Throughput`, `BenchmarkId`). Each benchmark runs a
//! short warm-up, then `sample_size` timed samples, and prints the median
//! per-iteration time. No statistical analysis or HTML reports.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the compiler-fence helper benches conventionally use.
pub use std::hint::black_box;

/// Top-level harness handle passed to each benchmark function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), self.sample_size, None, &mut routine);
        self
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name, parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Units processed per iteration, for derived rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, &mut routine);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mut wrapped = |b: &mut Bencher| routine(b, input);
        run_one(&label, self.sample_size, self.throughput, &mut wrapped);
        self
    }

    /// Ends the group (printing happens per-benchmark; this is a no-op).
    pub fn finish(&mut self) {}
}

/// Timer handle passed to benchmark routines.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, recording one sample per configured repetition.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples
            .push(start.elapsed() / self.iters_per_sample as u32);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    routine: &mut F,
) {
    // Warm-up sample: also calibrates how many iterations fit a sample.
    let mut warmup = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    routine(&mut warmup);
    let per_iter = warmup.samples.first().copied().unwrap_or(Duration::ZERO);
    // Aim for ~10ms per sample, capped to keep total runtime bounded.
    let iters = if per_iter.is_zero() {
        1000
    } else {
        (Duration::from_millis(10).as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 10_000) as u64
    };

    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: iters,
    };
    for _ in 0..sample_size {
        routine(&mut bencher);
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(
            "  ({:.1} Melem/s)",
            n as f64 / median.as_secs_f64().max(1e-12) / 1e6
        ),
        Throughput::Bytes(n) => format!(
            "  ({:.1} MiB/s)",
            n as f64 / median.as_secs_f64().max(1e-12) / (1024.0 * 1024.0)
        ),
    });
    println!(
        "{:<48} median {:>12?}{}",
        label,
        median,
        rate.unwrap_or_default()
    );
}

/// Declares a benchmark group entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("sum");
        group.sample_size(3);
        group.throughput(Throughput::Elements(1000));
        group.bench_with_input(BenchmarkId::from_parameter(1000), &1000usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = sum_bench
    }

    #[test]
    fn harness_runs_to_completion() {
        benches();
    }
}
