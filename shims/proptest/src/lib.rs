//! Workspace-local stand-in for `proptest`.
//!
//! A deterministic randomized-testing harness covering the API surface the
//! workspace's property tests use: numeric-range strategies, tuples,
//! `prop::collection::vec`, `prop_map` / `prop_flat_map`, the `proptest!`
//! macro and the `prop_assert*` family. No shrinking: a failing case panics
//! with the case number, and the per-test RNG stream is seeded from the test
//! name, so failures reproduce exactly on re-run.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};

/// Generator of random values for one test argument.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A fixed value as a (degenerate) strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    std::ops::Range<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    std::ops::RangeInclusive<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Rng, StdRng, Strategy};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a random length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A hard failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of randomized cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` randomized cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Runs `case` for each randomized iteration; panics on the first failure.
///
/// The RNG stream is derived from the test name (FNV-1a), so each test sees
/// a stable, reproducible sequence independent of execution order.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..config.cases {
        if let Err(e) = case(&mut rng) {
            panic!(
                "proptest `{}` failed at case {}/{}: {}",
                name,
                i + 1,
                config.cases,
                e
            );
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { ... }`
/// becomes a `#[test]` running the body over randomized cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                $crate::run_proptest(&__config, stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), __rng);)+
                    let mut __case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    __case()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}` at {}:{}",
                left,
                right,
                file!(),
                line!()
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}` at {}:{}",
                left,
                right,
                file!(),
                line!()
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3usize..10, f in -1.0f32..1.0, s in 0u64..5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!(s < 5);
        }

        #[test]
        fn vec_strategy_respects_size(v in prop::collection::vec(0usize..3, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 3));
        }

        #[test]
        fn map_and_flat_map_compose(
            (len, v) in (1usize..4).prop_flat_map(|n| (Just(n), prop::collection::vec(0u32..10, n..=n)))
        ) {
            prop_assert_eq!(v.len(), len);
        }
    }

    #[test]
    fn identical_names_reproduce_identical_streams() {
        let cfg = ProptestConfig::with_cases(16);
        let mut a = Vec::new();
        let mut b = Vec::new();
        crate::run_proptest(&cfg, "stream", |rng| {
            a.push(crate::Strategy::generate(&(0u64..1_000_000), rng));
            Ok(())
        });
        crate::run_proptest(&cfg, "stream", |rng| {
            b.push(crate::Strategy::generate(&(0u64..1_000_000), rng));
            Ok(())
        });
        assert_eq!(a, b);
    }
}
