//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no access to a crate registry, so this crate
//! re-implements exactly the slice of the `rand 0.8` API surface the
//! workspace uses: [`rngs::StdRng`] (an xoshiro256** generator seeded via
//! SplitMix64), the [`Rng`] / [`SeedableRng`] traits, [`seq::SliceRandom`]
//! shuffling, and a minimal [`distributions`] module.
//!
//! The stream differs numerically from upstream `StdRng` (which is
//! ChaCha12), but every workspace contract — determinism per seed, decent
//! statistical quality, uniform floats in `[0, 1)` — holds.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random number generators.
pub mod rngs {
    use super::SeedableRng;

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded through SplitMix64. Small state, fast, passes BigCrush.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Advances the generator and returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut z = seed;
            let mut next = || {
                z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^ (x >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }
}

/// Types samplable uniformly over their "natural" domain via [`Rng::gen`]
/// (`[0, 1)` for floats, the full range for integers, fair coin for bool).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_bits() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        (rng.next_bits() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_bits() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_bits()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        (rng.next_bits() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_bits() as usize
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_range<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire, without the
                // rejection step; the bias is < 2^-32 for every span the
                // workspace uses).
                let hi = ((rng.next_bits() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_bits() as $t;
                }
                let v = ((rng.next_bits() as u128 * span as u128) >> 64) as u64;
                lo + v as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                let hi = ((rng.next_bits() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
    )*};
}
signed_sample_range!(i32: u32, i64: u64, isize: usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let f: $t = Standard::sample_standard(rng);
                let v = self.start + f * (self.end - self.start);
                // Floating rounding can land exactly on `end`; nudge back.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let f: $t = Standard::sample_standard(rng);
                lo + f * (hi - lo)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// The user-facing generator trait (subset of `rand::Rng`).
pub trait Rng {
    /// Next 64 random bits.
    fn next_bits(&mut self) -> u64;

    /// Draws a value of `T` over its natural domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        let f: f64 = self.gen();
        f < p
    }
}

impl Rng for rngs::StdRng {
    fn next_bits(&mut self) -> u64 {
        self.next_u64()
    }
}

impl<R: Rng> Rng for &mut R {
    fn next_bits(&mut self) -> u64 {
        (**self).next_bits()
    }
}

/// Sequence-related helpers (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Slice shuffling and choosing.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle, in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Distribution objects (subset of `rand::distributions`).
pub mod distributions {
    use super::{Rng, SampleRange};

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: Rng>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[lo, hi)`.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
    }

    impl<T: Copy + PartialOrd> Uniform<T> {
        /// Creates the half-open uniform distribution `[lo, hi)`.
        ///
        /// # Panics
        ///
        /// Panics if `lo >= hi`.
        pub fn new(lo: T, hi: T) -> Self {
            assert!(lo < hi, "Uniform::new requires lo < hi");
            Uniform { lo, hi }
        }
    }

    impl<T> Distribution<T> for Uniform<T>
    where
        T: Copy,
        std::ops::Range<T>: SampleRange<T>,
    {
        fn sample<R: Rng>(&self, rng: &mut R) -> T {
            rng.gen_range(self.lo..self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(0usize..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {}", mean);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle did nothing");
    }

    #[test]
    fn choose_stays_in_slice() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [10, 20, 30];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
