//! Workspace-local stand-in for `serde`.
//!
//! The build environment has no registry access, so this crate provides the
//! slice of serde's surface the workspace uses: `#[derive(Serialize,
//! Deserialize)]` (via the sibling `serde_derive` shim) and the two traits,
//! defined directly against a JSON-shaped [`Value`] tree instead of serde's
//! generic serializer machinery. The sibling `serde_json` shim renders and
//! parses that tree.
//!
//! Encoding conventions match serde's JSON defaults for the shapes the
//! workspace contains: named structs become objects, newtype structs are
//! transparent, unit enum variants become strings, and data-carrying
//! variants become single-key objects.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A JSON-shaped value tree: the interchange format between the derive
/// macros and `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, with insertion order preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object by name.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short label of the value's type for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(u) => Some(u as f64),
            Value::I64(i) => Some(i as f64),
            Value::F64(f) => Some(f),
            _ => None,
        }
    }
}

/// Serialization / deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the value tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree does not encode a `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::U64(u) => <$t>::try_from(u)
                        .map_err(|_| Error::msg(format!("{} out of range for {}", u, stringify!($t)))),
                    Value::I64(i) if i >= 0 => <$t>::try_from(i as u64)
                        .map_err(|_| Error::msg(format!("{} out of range for {}", i, stringify!($t)))),
                    ref other => Err(Error::msg(format!(
                        "expected unsigned integer, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::U64(i as u64) } else { Value::I64(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::U64(u) => i64::try_from(u)
                        .ok()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| Error::msg(format!("{} out of range for {}", u, stringify!($t)))),
                    Value::I64(i) => <$t>::try_from(i)
                        .map_err(|_| Error::msg(format!("{} out of range for {}", i, stringify!($t)))),
                    ref other => Err(Error::msg(format!(
                        "expected integer, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::msg(format!("expected number, got {}", v.kind())))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::msg(format!("expected number, got {}", v.kind())))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::msg(format!("expected object, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+ ; $len:expr) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::msg(format!(
                        "expected array of {}, got {}",
                        $len,
                        other.kind()
                    ))),
                }
            }
        }
    };
}
impl_tuple!(T0: 0; 1);
impl_tuple!(T0: 0, T1: 1; 2);
impl_tuple!(T0: 0, T1: 1, T2: 2; 3);
impl_tuple!(T0: 0, T1: 1, T2: 2, T3: 3; 4);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn f32_roundtrip_is_exact() {
        for &x in &[0.1f32, 1e-30, 3.4e38, -7.25] {
            assert_eq!(f32::from_value(&x.to_value()).unwrap(), x);
        }
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(bool::from_value(&Value::U64(1)).is_err());
        assert!(Vec::<u32>::from_value(&Value::Bool(false)).is_err());
    }

    #[test]
    fn field_lookup() {
        let v = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert_eq!(v.get_field("a"), Some(&Value::U64(1)));
        assert_eq!(v.get_field("b"), None);
    }
}
