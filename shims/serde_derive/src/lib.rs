//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the workspace-local
//! serde stand-in.
//!
//! The build environment has no registry access, so `syn`/`quote` are not
//! available; this macro walks the raw [`proc_macro::TokenStream`] directly
//! and emits impl code as strings. It supports exactly the shapes the
//! workspace contains: named structs, tuple structs (newtypes are
//! transparent), unit structs, and enums with unit / tuple / struct
//! variants. The only field attribute honoured is `#[serde(default)]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field: its identifier plus whether `#[serde(default)]` was set.
struct Field {
    name: String,
    default: bool,
}

/// Shape of a struct body or an enum variant's payload.
enum Body {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

/// The parsed derive input.
enum Item {
    Struct {
        name: String,
        body: Body,
    },
    Enum {
        name: String,
        variants: Vec<(String, Body)>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, body } => serialize_struct(name, body),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    code.parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, body } => deserialize_struct(name, body),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    code.parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {:?}", other),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {:?}", other),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!(
                "serde_derive: generic types are not supported (deriving on `{}`)",
                name
            );
        }
    }

    match kw.as_str() {
        "struct" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::Named(parse_named_fields(&g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Body::Tuple(tuple_arity(&g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
                other => panic!(
                    "serde_derive: unexpected struct body for `{}`: {:?}",
                    name, other
                ),
            };
            Item::Struct { name, body }
        }
        "enum" => {
            let variants = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(&g.stream())
                }
                other => panic!(
                    "serde_derive: expected enum body for `{}`, got {:?}",
                    name, other
                ),
            };
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive: cannot derive for `{}` items", other),
    }
}

/// Parses `field: Type, ...` (with optional attributes / visibility per field).
fn parse_named_fields(stream: &TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut default = false;
        // Field attributes: `#[serde(default)]`, `#[doc = ...]`, ...
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            if let Some(TokenTree::Group(attr)) = tokens.get(i + 1) {
                let text = attr.stream().to_string();
                if text.starts_with("serde") && text.contains("default") {
                    default = true;
                }
            }
            i += 2;
        }
        // Visibility.
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, got {:?}", other),
        };
        i += 1;
        // Skip `:` then the type, up to a comma at angle-bracket depth 0.
        i += 1;
        let mut depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    fields
}

/// Counts the fields of a tuple body: comma-separated segments at depth 0.
fn tuple_arity(stream: &TokenStream) -> usize {
    let mut depth = 0i32;
    let mut count = 0;
    let mut seg_has_tokens = false;
    for t in stream.clone() {
        match &t {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => {
                    depth += 1;
                    seg_has_tokens = true;
                }
                '>' => {
                    depth -= 1;
                    seg_has_tokens = true;
                }
                ',' if depth == 0 => {
                    if seg_has_tokens {
                        count += 1;
                    }
                    seg_has_tokens = false;
                }
                _ => seg_has_tokens = true,
            },
            _ => seg_has_tokens = true,
        }
    }
    if seg_has_tokens {
        count += 1;
    }
    count
}

fn parse_variants(stream: &TokenStream) -> Vec<(String, Body)> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Variant attributes (e.g. `#[default]` from `#[derive(Default)]`).
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            i += 2;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, got {:?}", other),
        };
        i += 1;
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Body::Named(parse_named_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Body::Tuple(tuple_arity(&g.stream()))
            }
            _ => Body::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push((name, body));
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn serialize_struct(name: &str, body: &Body) -> String {
    let expr = match body {
        Body::Unit => "::serde::Value::Null".to_string(),
        Body::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{})", k))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Body::Named(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "({:?}.to_string(), ::serde::Serialize::to_value(&self.{}))",
                        f.name, f.name
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", items.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {} }}\n\
         }}",
        name, expr
    )
}

fn serialize_enum(name: &str, variants: &[(String, Body)]) -> String {
    let mut arms = Vec::new();
    for (vname, body) in variants {
        let arm = match body {
            Body::Unit => format!(
                "{}::{} => ::serde::Value::Str({:?}.to_string()),",
                name, vname, vname
            ),
            Body::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|k| format!("x{}", k)).collect();
                let inner = if *n == 1 {
                    "::serde::Serialize::to_value(x0)".to_string()
                } else {
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({})", b))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                };
                format!(
                    "{}::{}({}) => ::serde::Value::Object(vec![({:?}.to_string(), {})]),",
                    name,
                    vname,
                    binds.join(", "),
                    vname,
                    inner
                )
            }
            Body::Named(fields) => {
                let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                let items: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "({:?}.to_string(), ::serde::Serialize::to_value({}))",
                            f.name, f.name
                        )
                    })
                    .collect();
                format!(
                    "{}::{} {{ {} }} => ::serde::Value::Object(vec![({:?}.to_string(), \
                     ::serde::Value::Object(vec![{}]))]),",
                    name,
                    vname,
                    binds.join(", "),
                    vname,
                    items.join(", ")
                )
            }
        };
        arms.push(arm);
    }
    format!(
        "impl ::serde::Serialize for {} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         match self {{\n{}\n}}\n\
         }}\n\
         }}",
        name,
        arms.join("\n")
    )
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

fn named_field_exprs(type_label: &str, fields: &[Field], source: &str) -> Vec<String> {
    fields
        .iter()
        .map(|f| {
            let missing = if f.default {
                "::std::default::Default::default()".to_string()
            } else {
                format!(
                    "return Err(::serde::Error::msg(format!(\"missing field `{}` in {}\")))",
                    f.name, type_label
                )
            };
            format!(
                "{}: match {}.get_field({:?}) {{ Some(x) => ::serde::Deserialize::from_value(x)?, None => {} }},",
                f.name, source, f.name, missing
            )
        })
        .collect()
}

fn deserialize_struct(name: &str, body: &Body) -> String {
    let body_code = match body {
        Body::Unit => format!("let _ = v; Ok({})", name),
        Body::Tuple(1) => format!("Ok({}(::serde::Deserialize::from_value(v)?))", name),
        Body::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&items[{}])?", k))
                .collect();
            format!(
                "match v {{\n\
                 ::serde::Value::Array(items) if items.len() == {n} => Ok({name}({items})),\n\
                 other => Err(::serde::Error::msg(format!(\"expected array of {n} for {name}, got {{}}\", other.kind()))),\n\
                 }}",
                n = n,
                name = name,
                items = items.join(", ")
            )
        }
        Body::Named(fields) => {
            let items = named_field_exprs(name, fields, "v");
            format!(
                "if !matches!(v, ::serde::Value::Object(_)) {{\n\
                 return Err(::serde::Error::msg(format!(\"expected object for {}, got {{}}\", v.kind())));\n\
                 }}\n\
                 Ok({} {{\n{}\n}})",
                name,
                name,
                items.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {}\n\
         }}\n\
         }}",
        name, body_code
    )
}

fn deserialize_enum(name: &str, variants: &[(String, Body)]) -> String {
    let mut unit_arms = Vec::new();
    let mut data_arms = Vec::new();
    for (vname, body) in variants {
        match body {
            Body::Unit => {
                unit_arms.push(format!("{:?} => Ok({}::{}),", vname, name, vname));
            }
            Body::Tuple(1) => {
                data_arms.push(format!(
                    "{:?} => Ok({}::{}(::serde::Deserialize::from_value(inner)?)),",
                    vname, name, vname
                ));
            }
            Body::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_value(&items[{}])?", k))
                    .collect();
                data_arms.push(format!(
                    "{vq:?} => match inner {{\n\
                     ::serde::Value::Array(items) if items.len() == {n} => Ok({name}::{v}({items})),\n\
                     other => Err(::serde::Error::msg(format!(\"expected array of {n} for {name}::{v}, got {{}}\", other.kind()))),\n\
                     }},",
                    vq = vname,
                    n = n,
                    name = name,
                    v = vname,
                    items = items.join(", ")
                ));
            }
            Body::Named(fields) => {
                let label = format!("{}::{}", name, vname);
                let items = named_field_exprs(&label, fields, "inner");
                data_arms.push(format!(
                    "{:?} => Ok({}::{} {{\n{}\n}}),",
                    vname,
                    name,
                    vname,
                    items.join("\n")
                ));
            }
        }
    }
    let inner_bind = if data_arms.is_empty() {
        "_inner"
    } else {
        "inner"
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         match v {{\n\
         ::serde::Value::Str(s) => match s.as_str() {{\n\
         {unit_arms}\n\
         other => Err(::serde::Error::msg(format!(\"unknown variant `{{}}` for {name}\", other))),\n\
         }},\n\
         ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
         let (tag, {inner_bind}) = &fields[0];\n\
         match tag.as_str() {{\n\
         {data_arms}\n\
         other => Err(::serde::Error::msg(format!(\"unknown variant `{{}}` for {name}\", other))),\n\
         }}\n\
         }}\n\
         other => Err(::serde::Error::msg(format!(\"expected variant encoding for {name}, got {{}}\", other.kind()))),\n\
         }}\n\
         }}\n\
         }}",
        name = name,
        unit_arms = unit_arms.join("\n"),
        data_arms = data_arms.join("\n"),
        inner_bind = inner_bind
    )
}
