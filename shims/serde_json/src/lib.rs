//! Workspace-local stand-in for `serde_json`.
//!
//! Renders the serde shim's [`Value`] tree to JSON text and parses it back.
//! Number printing uses Rust's shortest-roundtrip formatting, so
//! `from_str(&to_string(x))` reproduces every finite `f64` (and therefore
//! every `f32`) bit-exactly. Non-finite floats serialize as `null`, matching
//! serde_json's behaviour.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Parse or serialization failure, with a byte offset for parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    offset: Option<usize>,
}

impl Error {
    fn parse(msg: impl Into<String>, offset: usize) -> Self {
        Error {
            msg: msg.into(),
            offset: Some(offset),
        }
    }

    fn data(msg: impl Into<String>) -> Self {
        Error {
            msg: msg.into(),
            offset: None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(off) => write!(f, "{} at byte {}", self.msg, off),
            None => write!(f, "{}", self.msg),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::data(e.0)
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails for the value shapes this workspace produces; the `Result`
/// mirrors serde_json's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails for the value shapes this workspace produces.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or when the parsed tree does not
/// encode a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_str(s)?;
    T::from_value(&value).map_err(Error::from)
}

/// Parses JSON text into the generic [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON.
pub fn parse_value_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::parse("trailing characters after JSON value", pos));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                out.push_str(&format_f64(*f));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

/// Shortest-roundtrip float formatting, forced to carry a `.0` or exponent
/// so the text re-parses as a float-typed number.
fn format_f64(f: f64) -> String {
    let s = format!("{}", f);
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{}.0", s)
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::parse("unexpected end of input", *pos)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::parse("expected `,` or `]` in array", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error::parse("expected `:` after object key", *pos));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(Error::parse("expected `,` or `}` in object", *pos)),
                }
            }
        }
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&b) => Err(Error::parse(
            format!("unexpected character `{}`", b as char),
            *pos,
        )),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, kw: &str, v: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(kw.as_bytes()) {
        *pos += kw.len();
        Ok(v)
    } else {
        Err(Error::parse(format!("expected `{}`", kw), *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::parse("expected string", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::parse("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, pos)?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect `\uXXXX` low half.
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err(Error::parse("unpaired surrogate", *pos));
                            }
                            *pos += 2;
                            let lo = parse_hex4(bytes, pos)?;
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::parse("invalid unicode escape", *pos))?,
                        );
                    }
                    _ => return Err(Error::parse("invalid escape sequence", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is valid).
                let start = *pos;
                let mut end = start + 1;
                while end < bytes.len() && bytes[end] & 0b1100_0000 == 0b1000_0000 {
                    end += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..end]).expect("valid utf-8"));
                *pos = end;
            }
        }
    }
}

/// Parses the 4 hex digits after `\u`; `pos` is on the `u` on entry and on
/// the final digit on exit.
fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, Error> {
    let start = *pos + 1;
    let end = start + 4;
    if end > bytes.len() {
        return Err(Error::parse("truncated unicode escape", *pos));
    }
    let digits = std::str::from_utf8(&bytes[start..end])
        .map_err(|_| Error::parse("invalid unicode escape", *pos))?;
    let code = u32::from_str_radix(digits, 16)
        .map_err(|_| Error::parse("invalid unicode escape", *pos))?;
    *pos = end - 1;
    Ok(code)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| Error::parse("invalid number", start))?;
    if !is_float {
        if text.starts_with('-') {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        } else if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::U64(u));
        }
    }
    text.parse::<f64>()
        .map(Value::F64)
        .map_err(|_| Error::parse(format!("invalid number `{}`", text), start))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<f64>("1.5e-3").unwrap(), 1.5e-3);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn u64_precision_is_preserved() {
        let big = u64::MAX - 1;
        let json = to_string(&big).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), big);
    }

    #[test]
    fn f32_vectors_roundtrip_bit_exact() {
        let xs: Vec<f32> = vec![0.1, -2.5e-7, 3.4e38, 0.0, 1.0 / 3.0];
        let json = to_string(&xs).unwrap();
        assert_eq!(from_str::<Vec<f32>>(&json).unwrap(), xs);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Object(vec![
            ("a".into(), Value::Array(vec![Value::U64(1), Value::U64(2)])),
            ("b".into(), Value::Str("x \"y\"".into())),
        ]);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(parse_value_str(&pretty).unwrap(), v);
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(parse_value_str("{\"a\": }").is_err());
        assert!(parse_value_str("[1, 2").is_err());
        assert!(parse_value_str("01x").is_err());
        assert!(parse_value_str("\"unterminated").is_err());
        assert!(from_str::<u64>("\"nope\"").is_err());
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }
}
