//! Umbrella crate for the *Spatio-Temporal Split Learning* (DSN 2021)
//! reproduction: re-exports every subsystem under one roof so downstream
//! users can depend on a single crate.
//!
//! * [`tensor`] — dense f32 tensors and numeric kernels
//! * [`nn`] — layers, losses, optimizers, [`nn::Sequential`]
//! * [`data`] — CIFAR-10 reader, synthetic generator, partitioning
//! * [`parallel`] — deterministic scoped thread pool (`STSL_THREADS`)
//! * [`simnet`] — deterministic discrete-event network simulator
//! * [`split`] — the paper's contribution: multi-end-system split
//!   learning with a centralized server, schedulers and baselines
//! * [`privacy`] — Fig. 4 visualization, inversion attacks, leakage
//!   metrics
//! * [`telemetry`] — deterministic observability: histograms, event
//!   journal, snapshot export and the plain-text dashboard
//!
//! See `examples/quickstart.rs` for a complete training run and
//! DESIGN.md for the experiment index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use stsl_data as data;
pub use stsl_nn as nn;
pub use stsl_parallel as parallel;
pub use stsl_privacy as privacy;
pub use stsl_simnet as simnet;
pub use stsl_split as split;
pub use stsl_telemetry as telemetry;
pub use stsl_tensor as tensor;

#[cfg(test)]
mod tests {
    //! Smoke tests for the re-exported facade: every path a downstream
    //! user would import must resolve and do something sensible.

    use super::*;

    #[test]
    fn tensor_and_nn_paths_compose() {
        use nn::{Layer, Mode};
        let x = tensor::Tensor::from_vec(vec![1.0, -2.0, 3.0, -4.0], [2, 2]);
        let mut relu = nn::layers::Relu::new();
        let y = relu.forward(&x, Mode::Eval);
        assert_eq!(y.as_slice(), &[1.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn split_config_builds_through_facade() {
        let cfg = split::SplitConfig::tiny(split::CutPoint(1), 2);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.end_systems, 2);
    }

    #[test]
    fn data_generator_reachable() {
        let set = data::SyntheticCifar::new(1).generate_sized(8, 16);
        assert_eq!(set.len(), 8);
    }

    #[test]
    fn parallel_threading_controls_reachable() {
        assert!(parallel::max_threads() >= 1);
        let doubled = parallel::with_threads(2, || {
            parallel::par_map_indexed(4, parallel::ChunkPolicy::min_chunk(1), |i| i * 2)
        });
        assert_eq!(doubled, vec![0, 2, 4, 6]);
    }

    #[test]
    fn simnet_clock_reachable() {
        let t = simnet::SimTime::ZERO;
        assert_eq!(t.as_secs_f64(), 0.0);
    }

    #[test]
    fn telemetry_hub_reachable() {
        let mut hub = telemetry::TelemetryHub::new(8);
        hub.record(telemetry::MetricId::UplinkLatency, 0, 1_500);
        hub.journal(10, telemetry::JournalKind::Arrival, 0);
        let seq = hub.emit_snapshot(20);
        assert_eq!(seq, 0);
        let snap = hub.latest_snapshot().expect("snapshot emitted");
        assert!(telemetry::render_dashboard(snap).contains("uplink_latency_us"));
    }
}
