//! Umbrella crate for the *Spatio-Temporal Split Learning* (DSN 2021)
//! reproduction: re-exports every subsystem under one roof so downstream
//! users can depend on a single crate.
//!
//! * [`tensor`] — dense f32 tensors and numeric kernels
//! * [`nn`] — layers, losses, optimizers, [`nn::Sequential`]
//! * [`data`] — CIFAR-10 reader, synthetic generator, partitioning
//! * [`simnet`] — deterministic discrete-event network simulator
//! * [`split`] — the paper's contribution: multi-end-system split
//!   learning with a centralized server, schedulers and baselines
//! * [`privacy`] — Fig. 4 visualization, inversion attacks, leakage
//!   metrics
//!
//! See `examples/quickstart.rs` for a complete training run and
//! DESIGN.md for the experiment index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use stsl_data as data;
pub use stsl_nn as nn;
pub use stsl_privacy as privacy;
pub use stsl_simnet as simnet;
pub use stsl_split as split;
pub use stsl_tensor as tensor;
