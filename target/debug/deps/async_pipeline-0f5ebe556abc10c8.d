/root/repo/target/debug/deps/async_pipeline-0f5ebe556abc10c8.d: tests/async_pipeline.rs

/root/repo/target/debug/deps/async_pipeline-0f5ebe556abc10c8: tests/async_pipeline.rs

tests/async_pipeline.rs:
