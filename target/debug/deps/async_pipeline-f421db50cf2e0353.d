/root/repo/target/debug/deps/async_pipeline-f421db50cf2e0353.d: tests/async_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libasync_pipeline-f421db50cf2e0353.rmeta: tests/async_pipeline.rs Cargo.toml

tests/async_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
