/root/repo/target/debug/deps/bytes-9eb776227e3109f0.d: shims/bytes/src/lib.rs

/root/repo/target/debug/deps/bytes-9eb776227e3109f0: shims/bytes/src/lib.rs

shims/bytes/src/lib.rs:
