/root/repo/target/debug/deps/bytes-c5bc2b59c41a5ac4.d: shims/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-c5bc2b59c41a5ac4.rmeta: shims/bytes/src/lib.rs Cargo.toml

shims/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
