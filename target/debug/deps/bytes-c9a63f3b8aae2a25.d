/root/repo/target/debug/deps/bytes-c9a63f3b8aae2a25.d: shims/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-c9a63f3b8aae2a25.rlib: shims/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-c9a63f3b8aae2a25.rmeta: shims/bytes/src/lib.rs

shims/bytes/src/lib.rs:
