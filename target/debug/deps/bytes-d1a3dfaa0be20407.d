/root/repo/target/debug/deps/bytes-d1a3dfaa0be20407.d: shims/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-d1a3dfaa0be20407.rmeta: shims/bytes/src/lib.rs Cargo.toml

shims/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
