/root/repo/target/debug/deps/comm_cost-3531140d0f8f07de.d: crates/bench/src/bin/comm_cost.rs Cargo.toml

/root/repo/target/debug/deps/libcomm_cost-3531140d0f8f07de.rmeta: crates/bench/src/bin/comm_cost.rs Cargo.toml

crates/bench/src/bin/comm_cost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
