/root/repo/target/debug/deps/comm_cost-73af05a043447527.d: crates/bench/src/bin/comm_cost.rs

/root/repo/target/debug/deps/comm_cost-73af05a043447527: crates/bench/src/bin/comm_cost.rs

crates/bench/src/bin/comm_cost.rs:
