/root/repo/target/debug/deps/comm_cost-ebdce417c3900326.d: crates/bench/src/bin/comm_cost.rs Cargo.toml

/root/repo/target/debug/deps/libcomm_cost-ebdce417c3900326.rmeta: crates/bench/src/bin/comm_cost.rs Cargo.toml

crates/bench/src/bin/comm_cost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
