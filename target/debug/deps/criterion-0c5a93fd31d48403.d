/root/repo/target/debug/deps/criterion-0c5a93fd31d48403.d: shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-0c5a93fd31d48403.rmeta: shims/criterion/src/lib.rs Cargo.toml

shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
