/root/repo/target/debug/deps/criterion-8ecebb49d9fb1d2d.d: shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-8ecebb49d9fb1d2d.rmeta: shims/criterion/src/lib.rs Cargo.toml

shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
