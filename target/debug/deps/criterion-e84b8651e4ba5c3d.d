/root/repo/target/debug/deps/criterion-e84b8651e4ba5c3d.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-e84b8651e4ba5c3d: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
