/root/repo/target/debug/deps/end_to_end-49e584bd94504916.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-49e584bd94504916: tests/end_to_end.rs

tests/end_to_end.rs:
