/root/repo/target/debug/deps/extensions-13e02cf35006a30f.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-13e02cf35006a30f.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
