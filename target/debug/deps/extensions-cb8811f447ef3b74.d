/root/repo/target/debug/deps/extensions-cb8811f447ef3b74.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-cb8811f447ef3b74: tests/extensions.rs

tests/extensions.rs:
