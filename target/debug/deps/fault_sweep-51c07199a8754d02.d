/root/repo/target/debug/deps/fault_sweep-51c07199a8754d02.d: crates/bench/src/bin/fault_sweep.rs

/root/repo/target/debug/deps/fault_sweep-51c07199a8754d02: crates/bench/src/bin/fault_sweep.rs

crates/bench/src/bin/fault_sweep.rs:
