/root/repo/target/debug/deps/fault_sweep-cd3f0622095683c4.d: crates/bench/src/bin/fault_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfault_sweep-cd3f0622095683c4.rmeta: crates/bench/src/bin/fault_sweep.rs Cargo.toml

crates/bench/src/bin/fault_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
