/root/repo/target/debug/deps/fault_tolerance-c10a65c317e4afea.d: tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-c10a65c317e4afea: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
