/root/repo/target/debug/deps/fault_tolerance-c1e3f9a0580ea5cc.d: tests/fault_tolerance.rs Cargo.toml

/root/repo/target/debug/deps/libfault_tolerance-c1e3f9a0580ea5cc.rmeta: tests/fault_tolerance.rs Cargo.toml

tests/fault_tolerance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
