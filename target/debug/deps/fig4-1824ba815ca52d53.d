/root/repo/target/debug/deps/fig4-1824ba815ca52d53.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-1824ba815ca52d53: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
