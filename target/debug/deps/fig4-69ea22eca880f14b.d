/root/repo/target/debug/deps/fig4-69ea22eca880f14b.d: crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-69ea22eca880f14b.rmeta: crates/bench/src/bin/fig4.rs Cargo.toml

crates/bench/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
