/root/repo/target/debug/deps/kernels-c169852b0d2ce4de.d: crates/bench/benches/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-c169852b0d2ce4de.rmeta: crates/bench/benches/kernels.rs Cargo.toml

crates/bench/benches/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
