/root/repo/target/debug/deps/leakage_sweep-8debcffc575ac788.d: crates/bench/src/bin/leakage_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libleakage_sweep-8debcffc575ac788.rmeta: crates/bench/src/bin/leakage_sweep.rs Cargo.toml

crates/bench/src/bin/leakage_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
