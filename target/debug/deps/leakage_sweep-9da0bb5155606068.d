/root/repo/target/debug/deps/leakage_sweep-9da0bb5155606068.d: crates/bench/src/bin/leakage_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libleakage_sweep-9da0bb5155606068.rmeta: crates/bench/src/bin/leakage_sweep.rs Cargo.toml

crates/bench/src/bin/leakage_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
