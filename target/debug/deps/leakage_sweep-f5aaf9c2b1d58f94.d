/root/repo/target/debug/deps/leakage_sweep-f5aaf9c2b1d58f94.d: crates/bench/src/bin/leakage_sweep.rs

/root/repo/target/debug/deps/leakage_sweep-f5aaf9c2b1d58f94: crates/bench/src/bin/leakage_sweep.rs

crates/bench/src/bin/leakage_sweep.rs:
