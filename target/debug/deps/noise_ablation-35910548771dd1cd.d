/root/repo/target/debug/deps/noise_ablation-35910548771dd1cd.d: crates/bench/src/bin/noise_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libnoise_ablation-35910548771dd1cd.rmeta: crates/bench/src/bin/noise_ablation.rs Cargo.toml

crates/bench/src/bin/noise_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
