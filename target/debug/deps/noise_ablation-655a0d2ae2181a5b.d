/root/repo/target/debug/deps/noise_ablation-655a0d2ae2181a5b.d: crates/bench/src/bin/noise_ablation.rs

/root/repo/target/debug/deps/noise_ablation-655a0d2ae2181a5b: crates/bench/src/bin/noise_ablation.rs

crates/bench/src/bin/noise_ablation.rs:
