/root/repo/target/debug/deps/noise_ablation-dd20cce4e32690cf.d: crates/bench/src/bin/noise_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libnoise_ablation-dd20cce4e32690cf.rmeta: crates/bench/src/bin/noise_ablation.rs Cargo.toml

crates/bench/src/bin/noise_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
