/root/repo/target/debug/deps/pool_ablation-3058c49533431ab8.d: crates/bench/src/bin/pool_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libpool_ablation-3058c49533431ab8.rmeta: crates/bench/src/bin/pool_ablation.rs Cargo.toml

crates/bench/src/bin/pool_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
