/root/repo/target/debug/deps/pool_ablation-69c07396fa064ee4.d: crates/bench/src/bin/pool_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libpool_ablation-69c07396fa064ee4.rmeta: crates/bench/src/bin/pool_ablation.rs Cargo.toml

crates/bench/src/bin/pool_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
