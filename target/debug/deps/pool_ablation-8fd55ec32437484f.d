/root/repo/target/debug/deps/pool_ablation-8fd55ec32437484f.d: crates/bench/src/bin/pool_ablation.rs

/root/repo/target/debug/deps/pool_ablation-8fd55ec32437484f: crates/bench/src/bin/pool_ablation.rs

crates/bench/src/bin/pool_ablation.rs:
