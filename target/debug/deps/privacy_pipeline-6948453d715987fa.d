/root/repo/target/debug/deps/privacy_pipeline-6948453d715987fa.d: tests/privacy_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libprivacy_pipeline-6948453d715987fa.rmeta: tests/privacy_pipeline.rs Cargo.toml

tests/privacy_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
