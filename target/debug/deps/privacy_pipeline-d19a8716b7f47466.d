/root/repo/target/debug/deps/privacy_pipeline-d19a8716b7f47466.d: tests/privacy_pipeline.rs

/root/repo/target/debug/deps/privacy_pipeline-d19a8716b7f47466: tests/privacy_pipeline.rs

tests/privacy_pipeline.rs:
