/root/repo/target/debug/deps/properties-13ebc66349c012fc.d: crates/tensor/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-13ebc66349c012fc.rmeta: crates/tensor/tests/properties.rs Cargo.toml

crates/tensor/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
