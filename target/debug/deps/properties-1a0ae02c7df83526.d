/root/repo/target/debug/deps/properties-1a0ae02c7df83526.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-1a0ae02c7df83526.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
