/root/repo/target/debug/deps/properties-c27155f901d1d52e.d: crates/tensor/tests/properties.rs

/root/repo/target/debug/deps/properties-c27155f901d1d52e: crates/tensor/tests/properties.rs

crates/tensor/tests/properties.rs:
