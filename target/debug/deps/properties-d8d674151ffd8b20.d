/root/repo/target/debug/deps/properties-d8d674151ffd8b20.d: tests/properties.rs

/root/repo/target/debug/deps/properties-d8d674151ffd8b20: tests/properties.rs

tests/properties.rs:
