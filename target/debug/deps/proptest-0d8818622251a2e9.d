/root/repo/target/debug/deps/proptest-0d8818622251a2e9.d: shims/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-0d8818622251a2e9.rmeta: shims/proptest/src/lib.rs Cargo.toml

shims/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
