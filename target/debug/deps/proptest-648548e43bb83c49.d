/root/repo/target/debug/deps/proptest-648548e43bb83c49.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-648548e43bb83c49.rlib: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-648548e43bb83c49.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
