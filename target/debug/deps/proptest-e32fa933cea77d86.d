/root/repo/target/debug/deps/proptest-e32fa933cea77d86.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-e32fa933cea77d86: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
