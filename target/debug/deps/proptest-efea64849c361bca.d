/root/repo/target/debug/deps/proptest-efea64849c361bca.d: shims/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-efea64849c361bca.rmeta: shims/proptest/src/lib.rs Cargo.toml

shims/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
