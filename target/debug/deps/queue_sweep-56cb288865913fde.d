/root/repo/target/debug/deps/queue_sweep-56cb288865913fde.d: crates/bench/src/bin/queue_sweep.rs

/root/repo/target/debug/deps/queue_sweep-56cb288865913fde: crates/bench/src/bin/queue_sweep.rs

crates/bench/src/bin/queue_sweep.rs:
