/root/repo/target/debug/deps/queue_sweep-b3e5be02fc605d5c.d: crates/bench/src/bin/queue_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libqueue_sweep-b3e5be02fc605d5c.rmeta: crates/bench/src/bin/queue_sweep.rs Cargo.toml

crates/bench/src/bin/queue_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
