/root/repo/target/debug/deps/queue_sweep-c838d52aecefe689.d: crates/bench/src/bin/queue_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libqueue_sweep-c838d52aecefe689.rmeta: crates/bench/src/bin/queue_sweep.rs Cargo.toml

crates/bench/src/bin/queue_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
