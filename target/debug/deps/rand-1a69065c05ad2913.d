/root/repo/target/debug/deps/rand-1a69065c05ad2913.d: shims/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-1a69065c05ad2913.rmeta: shims/rand/src/lib.rs Cargo.toml

shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
