/root/repo/target/debug/deps/rand-4623ddfeb966ef0b.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-4623ddfeb966ef0b.rlib: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-4623ddfeb966ef0b.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
