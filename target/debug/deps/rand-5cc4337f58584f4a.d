/root/repo/target/debug/deps/rand-5cc4337f58584f4a.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/rand-5cc4337f58584f4a: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
