/root/repo/target/debug/deps/scale_sweep-2ee4cce129a01212.d: crates/bench/src/bin/scale_sweep.rs

/root/repo/target/debug/deps/scale_sweep-2ee4cce129a01212: crates/bench/src/bin/scale_sweep.rs

crates/bench/src/bin/scale_sweep.rs:
