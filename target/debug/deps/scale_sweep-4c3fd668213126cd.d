/root/repo/target/debug/deps/scale_sweep-4c3fd668213126cd.d: crates/bench/src/bin/scale_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libscale_sweep-4c3fd668213126cd.rmeta: crates/bench/src/bin/scale_sweep.rs Cargo.toml

crates/bench/src/bin/scale_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
