/root/repo/target/debug/deps/scale_sweep-caee4ba8d2dfd4d0.d: crates/bench/src/bin/scale_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libscale_sweep-caee4ba8d2dfd4d0.rmeta: crates/bench/src/bin/scale_sweep.rs Cargo.toml

crates/bench/src/bin/scale_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
