/root/repo/target/debug/deps/scheduler-ae5d0b0182c916e5.d: crates/bench/benches/scheduler.rs Cargo.toml

/root/repo/target/debug/deps/libscheduler-ae5d0b0182c916e5.rmeta: crates/bench/benches/scheduler.rs Cargo.toml

crates/bench/benches/scheduler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
