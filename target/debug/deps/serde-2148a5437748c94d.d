/root/repo/target/debug/deps/serde-2148a5437748c94d.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/serde-2148a5437748c94d: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
