/root/repo/target/debug/deps/serde-59a1d13589266d4c.d: shims/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-59a1d13589266d4c.rmeta: shims/serde/src/lib.rs Cargo.toml

shims/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
