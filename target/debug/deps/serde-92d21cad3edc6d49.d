/root/repo/target/debug/deps/serde-92d21cad3edc6d49.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-92d21cad3edc6d49.rlib: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-92d21cad3edc6d49.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
