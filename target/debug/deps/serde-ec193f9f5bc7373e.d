/root/repo/target/debug/deps/serde-ec193f9f5bc7373e.d: shims/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-ec193f9f5bc7373e.rmeta: shims/serde/src/lib.rs Cargo.toml

shims/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
