/root/repo/target/debug/deps/serde_derive-6d0e873694e6827e.d: shims/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_derive-6d0e873694e6827e.rmeta: shims/serde_derive/src/lib.rs Cargo.toml

shims/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
