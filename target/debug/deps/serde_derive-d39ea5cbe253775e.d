/root/repo/target/debug/deps/serde_derive-d39ea5cbe253775e.d: shims/serde_derive/src/lib.rs

/root/repo/target/debug/deps/serde_derive-d39ea5cbe253775e: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
