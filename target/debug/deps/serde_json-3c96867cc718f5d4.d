/root/repo/target/debug/deps/serde_json-3c96867cc718f5d4.d: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-3c96867cc718f5d4.rlib: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-3c96867cc718f5d4.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
