/root/repo/target/debug/deps/serde_json-9f0da4ee6f3cbfce.d: shims/serde_json/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_json-9f0da4ee6f3cbfce.rmeta: shims/serde_json/src/lib.rs Cargo.toml

shims/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
