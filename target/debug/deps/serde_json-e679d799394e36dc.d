/root/repo/target/debug/deps/serde_json-e679d799394e36dc.d: shims/serde_json/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_json-e679d799394e36dc.rmeta: shims/serde_json/src/lib.rs Cargo.toml

shims/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
