/root/repo/target/debug/deps/serde_json-f360d00f83c0e174.d: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-f360d00f83c0e174: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
