/root/repo/target/debug/deps/spatio_temporal_split_learning-279252df68e687aa.d: src/lib.rs

/root/repo/target/debug/deps/spatio_temporal_split_learning-279252df68e687aa: src/lib.rs

src/lib.rs:
