/root/repo/target/debug/deps/spatio_temporal_split_learning-36d994133e95dd81.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libspatio_temporal_split_learning-36d994133e95dd81.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
