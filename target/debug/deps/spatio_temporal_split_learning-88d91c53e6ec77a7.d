/root/repo/target/debug/deps/spatio_temporal_split_learning-88d91c53e6ec77a7.d: src/lib.rs

/root/repo/target/debug/deps/libspatio_temporal_split_learning-88d91c53e6ec77a7.rlib: src/lib.rs

/root/repo/target/debug/deps/libspatio_temporal_split_learning-88d91c53e6ec77a7.rmeta: src/lib.rs

src/lib.rs:
