/root/repo/target/debug/deps/spatio_temporal_split_learning-a5267c52ac8fdca7.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libspatio_temporal_split_learning-a5267c52ac8fdca7.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
