/root/repo/target/debug/deps/split_equivalence-0fa48ea99146899c.d: tests/split_equivalence.rs

/root/repo/target/debug/deps/split_equivalence-0fa48ea99146899c: tests/split_equivalence.rs

tests/split_equivalence.rs:
