/root/repo/target/debug/deps/split_equivalence-c1bea7047ba31d3c.d: tests/split_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libsplit_equivalence-c1bea7047ba31d3c.rmeta: tests/split_equivalence.rs Cargo.toml

tests/split_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
