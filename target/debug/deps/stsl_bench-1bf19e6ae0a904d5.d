/root/repo/target/debug/deps/stsl_bench-1bf19e6ae0a904d5.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/stsl_bench-1bf19e6ae0a904d5: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
