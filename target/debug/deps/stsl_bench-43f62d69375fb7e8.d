/root/repo/target/debug/deps/stsl_bench-43f62d69375fb7e8.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libstsl_bench-43f62d69375fb7e8.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
