/root/repo/target/debug/deps/stsl_bench-676d12f609d7c515.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libstsl_bench-676d12f609d7c515.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libstsl_bench-676d12f609d7c515.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
