/root/repo/target/debug/deps/stsl_bench-b44f8b863ed3d57d.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libstsl_bench-b44f8b863ed3d57d.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
