/root/repo/target/debug/deps/stsl_data-33b59b93841ebcd9.d: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/batching.rs crates/data/src/cifar.rs crates/data/src/dataset.rs crates/data/src/kfold.rs crates/data/src/partition.rs crates/data/src/synthetic.rs

/root/repo/target/debug/deps/libstsl_data-33b59b93841ebcd9.rlib: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/batching.rs crates/data/src/cifar.rs crates/data/src/dataset.rs crates/data/src/kfold.rs crates/data/src/partition.rs crates/data/src/synthetic.rs

/root/repo/target/debug/deps/libstsl_data-33b59b93841ebcd9.rmeta: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/batching.rs crates/data/src/cifar.rs crates/data/src/dataset.rs crates/data/src/kfold.rs crates/data/src/partition.rs crates/data/src/synthetic.rs

crates/data/src/lib.rs:
crates/data/src/augment.rs:
crates/data/src/batching.rs:
crates/data/src/cifar.rs:
crates/data/src/dataset.rs:
crates/data/src/kfold.rs:
crates/data/src/partition.rs:
crates/data/src/synthetic.rs:
