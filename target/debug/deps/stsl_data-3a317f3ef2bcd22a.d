/root/repo/target/debug/deps/stsl_data-3a317f3ef2bcd22a.d: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/batching.rs crates/data/src/cifar.rs crates/data/src/dataset.rs crates/data/src/kfold.rs crates/data/src/partition.rs crates/data/src/synthetic.rs Cargo.toml

/root/repo/target/debug/deps/libstsl_data-3a317f3ef2bcd22a.rmeta: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/batching.rs crates/data/src/cifar.rs crates/data/src/dataset.rs crates/data/src/kfold.rs crates/data/src/partition.rs crates/data/src/synthetic.rs Cargo.toml

crates/data/src/lib.rs:
crates/data/src/augment.rs:
crates/data/src/batching.rs:
crates/data/src/cifar.rs:
crates/data/src/dataset.rs:
crates/data/src/kfold.rs:
crates/data/src/partition.rs:
crates/data/src/synthetic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
