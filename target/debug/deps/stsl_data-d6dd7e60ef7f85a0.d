/root/repo/target/debug/deps/stsl_data-d6dd7e60ef7f85a0.d: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/batching.rs crates/data/src/cifar.rs crates/data/src/dataset.rs crates/data/src/kfold.rs crates/data/src/partition.rs crates/data/src/synthetic.rs

/root/repo/target/debug/deps/stsl_data-d6dd7e60ef7f85a0: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/batching.rs crates/data/src/cifar.rs crates/data/src/dataset.rs crates/data/src/kfold.rs crates/data/src/partition.rs crates/data/src/synthetic.rs

crates/data/src/lib.rs:
crates/data/src/augment.rs:
crates/data/src/batching.rs:
crates/data/src/cifar.rs:
crates/data/src/dataset.rs:
crates/data/src/kfold.rs:
crates/data/src/partition.rs:
crates/data/src/synthetic.rs:
