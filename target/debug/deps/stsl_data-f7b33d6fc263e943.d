/root/repo/target/debug/deps/stsl_data-f7b33d6fc263e943.d: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/batching.rs crates/data/src/cifar.rs crates/data/src/dataset.rs crates/data/src/kfold.rs crates/data/src/partition.rs crates/data/src/synthetic.rs Cargo.toml

/root/repo/target/debug/deps/libstsl_data-f7b33d6fc263e943.rmeta: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/batching.rs crates/data/src/cifar.rs crates/data/src/dataset.rs crates/data/src/kfold.rs crates/data/src/partition.rs crates/data/src/synthetic.rs Cargo.toml

crates/data/src/lib.rs:
crates/data/src/augment.rs:
crates/data/src/batching.rs:
crates/data/src/cifar.rs:
crates/data/src/dataset.rs:
crates/data/src/kfold.rs:
crates/data/src/partition.rs:
crates/data/src/synthetic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
