/root/repo/target/debug/deps/stsl_nn-03ea26157102862b.d: crates/nn/src/lib.rs crates/nn/src/clip.rs crates/nn/src/gradcheck.rs crates/nn/src/layer.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/activation.rs crates/nn/src/layers/avgpool2d.rs crates/nn/src/layers/batchnorm.rs crates/nn/src/layers/conv2d.rs crates/nn/src/layers/dense.rs crates/nn/src/layers/maxpool2d.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/summary.rs Cargo.toml

/root/repo/target/debug/deps/libstsl_nn-03ea26157102862b.rmeta: crates/nn/src/lib.rs crates/nn/src/clip.rs crates/nn/src/gradcheck.rs crates/nn/src/layer.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/activation.rs crates/nn/src/layers/avgpool2d.rs crates/nn/src/layers/batchnorm.rs crates/nn/src/layers/conv2d.rs crates/nn/src/layers/dense.rs crates/nn/src/layers/maxpool2d.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/summary.rs Cargo.toml

crates/nn/src/lib.rs:
crates/nn/src/clip.rs:
crates/nn/src/gradcheck.rs:
crates/nn/src/layer.rs:
crates/nn/src/layers/mod.rs:
crates/nn/src/layers/activation.rs:
crates/nn/src/layers/avgpool2d.rs:
crates/nn/src/layers/batchnorm.rs:
crates/nn/src/layers/conv2d.rs:
crates/nn/src/layers/dense.rs:
crates/nn/src/layers/maxpool2d.rs:
crates/nn/src/loss.rs:
crates/nn/src/metrics.rs:
crates/nn/src/model.rs:
crates/nn/src/optim.rs:
crates/nn/src/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
