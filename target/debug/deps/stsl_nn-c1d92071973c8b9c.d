/root/repo/target/debug/deps/stsl_nn-c1d92071973c8b9c.d: crates/nn/src/lib.rs crates/nn/src/clip.rs crates/nn/src/gradcheck.rs crates/nn/src/layer.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/activation.rs crates/nn/src/layers/avgpool2d.rs crates/nn/src/layers/batchnorm.rs crates/nn/src/layers/conv2d.rs crates/nn/src/layers/dense.rs crates/nn/src/layers/maxpool2d.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/summary.rs Cargo.toml

/root/repo/target/debug/deps/libstsl_nn-c1d92071973c8b9c.rmeta: crates/nn/src/lib.rs crates/nn/src/clip.rs crates/nn/src/gradcheck.rs crates/nn/src/layer.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/activation.rs crates/nn/src/layers/avgpool2d.rs crates/nn/src/layers/batchnorm.rs crates/nn/src/layers/conv2d.rs crates/nn/src/layers/dense.rs crates/nn/src/layers/maxpool2d.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/summary.rs Cargo.toml

crates/nn/src/lib.rs:
crates/nn/src/clip.rs:
crates/nn/src/gradcheck.rs:
crates/nn/src/layer.rs:
crates/nn/src/layers/mod.rs:
crates/nn/src/layers/activation.rs:
crates/nn/src/layers/avgpool2d.rs:
crates/nn/src/layers/batchnorm.rs:
crates/nn/src/layers/conv2d.rs:
crates/nn/src/layers/dense.rs:
crates/nn/src/layers/maxpool2d.rs:
crates/nn/src/loss.rs:
crates/nn/src/metrics.rs:
crates/nn/src/model.rs:
crates/nn/src/optim.rs:
crates/nn/src/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
