/root/repo/target/debug/deps/stsl_privacy-05672d6c81fb121d.d: crates/privacy/src/lib.rs crates/privacy/src/image.rs crates/privacy/src/inversion.rs crates/privacy/src/metrics.rs crates/privacy/src/visualize.rs Cargo.toml

/root/repo/target/debug/deps/libstsl_privacy-05672d6c81fb121d.rmeta: crates/privacy/src/lib.rs crates/privacy/src/image.rs crates/privacy/src/inversion.rs crates/privacy/src/metrics.rs crates/privacy/src/visualize.rs Cargo.toml

crates/privacy/src/lib.rs:
crates/privacy/src/image.rs:
crates/privacy/src/inversion.rs:
crates/privacy/src/metrics.rs:
crates/privacy/src/visualize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
