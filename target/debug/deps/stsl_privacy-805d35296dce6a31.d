/root/repo/target/debug/deps/stsl_privacy-805d35296dce6a31.d: crates/privacy/src/lib.rs crates/privacy/src/image.rs crates/privacy/src/inversion.rs crates/privacy/src/metrics.rs crates/privacy/src/visualize.rs

/root/repo/target/debug/deps/stsl_privacy-805d35296dce6a31: crates/privacy/src/lib.rs crates/privacy/src/image.rs crates/privacy/src/inversion.rs crates/privacy/src/metrics.rs crates/privacy/src/visualize.rs

crates/privacy/src/lib.rs:
crates/privacy/src/image.rs:
crates/privacy/src/inversion.rs:
crates/privacy/src/metrics.rs:
crates/privacy/src/visualize.rs:
