/root/repo/target/debug/deps/stsl_privacy-8a9b4afe7acfb682.d: crates/privacy/src/lib.rs crates/privacy/src/image.rs crates/privacy/src/inversion.rs crates/privacy/src/metrics.rs crates/privacy/src/visualize.rs

/root/repo/target/debug/deps/libstsl_privacy-8a9b4afe7acfb682.rlib: crates/privacy/src/lib.rs crates/privacy/src/image.rs crates/privacy/src/inversion.rs crates/privacy/src/metrics.rs crates/privacy/src/visualize.rs

/root/repo/target/debug/deps/libstsl_privacy-8a9b4afe7acfb682.rmeta: crates/privacy/src/lib.rs crates/privacy/src/image.rs crates/privacy/src/inversion.rs crates/privacy/src/metrics.rs crates/privacy/src/visualize.rs

crates/privacy/src/lib.rs:
crates/privacy/src/image.rs:
crates/privacy/src/inversion.rs:
crates/privacy/src/metrics.rs:
crates/privacy/src/visualize.rs:
