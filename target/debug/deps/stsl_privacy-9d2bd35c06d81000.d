/root/repo/target/debug/deps/stsl_privacy-9d2bd35c06d81000.d: crates/privacy/src/lib.rs crates/privacy/src/image.rs crates/privacy/src/inversion.rs crates/privacy/src/metrics.rs crates/privacy/src/visualize.rs Cargo.toml

/root/repo/target/debug/deps/libstsl_privacy-9d2bd35c06d81000.rmeta: crates/privacy/src/lib.rs crates/privacy/src/image.rs crates/privacy/src/inversion.rs crates/privacy/src/metrics.rs crates/privacy/src/visualize.rs Cargo.toml

crates/privacy/src/lib.rs:
crates/privacy/src/image.rs:
crates/privacy/src/inversion.rs:
crates/privacy/src/metrics.rs:
crates/privacy/src/visualize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
