/root/repo/target/debug/deps/stsl_simnet-003891bde48e2364.d: crates/simnet/src/lib.rs crates/simnet/src/event.rs crates/simnet/src/fault.rs crates/simnet/src/link.rs crates/simnet/src/network.rs crates/simnet/src/stats.rs crates/simnet/src/time.rs crates/simnet/src/topology.rs crates/simnet/src/trace.rs

/root/repo/target/debug/deps/libstsl_simnet-003891bde48e2364.rlib: crates/simnet/src/lib.rs crates/simnet/src/event.rs crates/simnet/src/fault.rs crates/simnet/src/link.rs crates/simnet/src/network.rs crates/simnet/src/stats.rs crates/simnet/src/time.rs crates/simnet/src/topology.rs crates/simnet/src/trace.rs

/root/repo/target/debug/deps/libstsl_simnet-003891bde48e2364.rmeta: crates/simnet/src/lib.rs crates/simnet/src/event.rs crates/simnet/src/fault.rs crates/simnet/src/link.rs crates/simnet/src/network.rs crates/simnet/src/stats.rs crates/simnet/src/time.rs crates/simnet/src/topology.rs crates/simnet/src/trace.rs

crates/simnet/src/lib.rs:
crates/simnet/src/event.rs:
crates/simnet/src/fault.rs:
crates/simnet/src/link.rs:
crates/simnet/src/network.rs:
crates/simnet/src/stats.rs:
crates/simnet/src/time.rs:
crates/simnet/src/topology.rs:
crates/simnet/src/trace.rs:
