/root/repo/target/debug/deps/stsl_simnet-0782ea2bb1ccd165.d: crates/simnet/src/lib.rs crates/simnet/src/event.rs crates/simnet/src/fault.rs crates/simnet/src/link.rs crates/simnet/src/network.rs crates/simnet/src/stats.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs crates/simnet/src/topology.rs

/root/repo/target/debug/deps/stsl_simnet-0782ea2bb1ccd165: crates/simnet/src/lib.rs crates/simnet/src/event.rs crates/simnet/src/fault.rs crates/simnet/src/link.rs crates/simnet/src/network.rs crates/simnet/src/stats.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs crates/simnet/src/topology.rs

crates/simnet/src/lib.rs:
crates/simnet/src/event.rs:
crates/simnet/src/fault.rs:
crates/simnet/src/link.rs:
crates/simnet/src/network.rs:
crates/simnet/src/stats.rs:
crates/simnet/src/time.rs:
crates/simnet/src/trace.rs:
crates/simnet/src/topology.rs:
