/root/repo/target/debug/deps/stsl_simnet-890f750c52516732.d: crates/simnet/src/lib.rs crates/simnet/src/event.rs crates/simnet/src/fault.rs crates/simnet/src/link.rs crates/simnet/src/network.rs crates/simnet/src/stats.rs crates/simnet/src/time.rs crates/simnet/src/topology.rs crates/simnet/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libstsl_simnet-890f750c52516732.rmeta: crates/simnet/src/lib.rs crates/simnet/src/event.rs crates/simnet/src/fault.rs crates/simnet/src/link.rs crates/simnet/src/network.rs crates/simnet/src/stats.rs crates/simnet/src/time.rs crates/simnet/src/topology.rs crates/simnet/src/trace.rs Cargo.toml

crates/simnet/src/lib.rs:
crates/simnet/src/event.rs:
crates/simnet/src/fault.rs:
crates/simnet/src/link.rs:
crates/simnet/src/network.rs:
crates/simnet/src/stats.rs:
crates/simnet/src/time.rs:
crates/simnet/src/topology.rs:
crates/simnet/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
