/root/repo/target/debug/deps/stsl_split-168b2fefa4880b71.d: crates/split/src/lib.rs crates/split/src/async_trainer.rs crates/split/src/baselines.rs crates/split/src/checkpoint.rs crates/split/src/client.rs crates/split/src/config.rs crates/split/src/model.rs crates/split/src/protocol.rs crates/split/src/report.rs crates/split/src/resilience.rs crates/split/src/scheduler.rs crates/split/src/server.rs crates/split/src/trainer.rs crates/split/src/ushaped.rs

/root/repo/target/debug/deps/libstsl_split-168b2fefa4880b71.rlib: crates/split/src/lib.rs crates/split/src/async_trainer.rs crates/split/src/baselines.rs crates/split/src/checkpoint.rs crates/split/src/client.rs crates/split/src/config.rs crates/split/src/model.rs crates/split/src/protocol.rs crates/split/src/report.rs crates/split/src/resilience.rs crates/split/src/scheduler.rs crates/split/src/server.rs crates/split/src/trainer.rs crates/split/src/ushaped.rs

/root/repo/target/debug/deps/libstsl_split-168b2fefa4880b71.rmeta: crates/split/src/lib.rs crates/split/src/async_trainer.rs crates/split/src/baselines.rs crates/split/src/checkpoint.rs crates/split/src/client.rs crates/split/src/config.rs crates/split/src/model.rs crates/split/src/protocol.rs crates/split/src/report.rs crates/split/src/resilience.rs crates/split/src/scheduler.rs crates/split/src/server.rs crates/split/src/trainer.rs crates/split/src/ushaped.rs

crates/split/src/lib.rs:
crates/split/src/async_trainer.rs:
crates/split/src/baselines.rs:
crates/split/src/checkpoint.rs:
crates/split/src/client.rs:
crates/split/src/config.rs:
crates/split/src/model.rs:
crates/split/src/protocol.rs:
crates/split/src/report.rs:
crates/split/src/resilience.rs:
crates/split/src/scheduler.rs:
crates/split/src/server.rs:
crates/split/src/trainer.rs:
crates/split/src/ushaped.rs:
