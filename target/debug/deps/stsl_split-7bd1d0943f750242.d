/root/repo/target/debug/deps/stsl_split-7bd1d0943f750242.d: crates/split/src/lib.rs crates/split/src/async_trainer.rs crates/split/src/baselines.rs crates/split/src/checkpoint.rs crates/split/src/client.rs crates/split/src/config.rs crates/split/src/model.rs crates/split/src/protocol.rs crates/split/src/report.rs crates/split/src/resilience.rs crates/split/src/scheduler.rs crates/split/src/server.rs crates/split/src/trainer.rs crates/split/src/ushaped.rs Cargo.toml

/root/repo/target/debug/deps/libstsl_split-7bd1d0943f750242.rmeta: crates/split/src/lib.rs crates/split/src/async_trainer.rs crates/split/src/baselines.rs crates/split/src/checkpoint.rs crates/split/src/client.rs crates/split/src/config.rs crates/split/src/model.rs crates/split/src/protocol.rs crates/split/src/report.rs crates/split/src/resilience.rs crates/split/src/scheduler.rs crates/split/src/server.rs crates/split/src/trainer.rs crates/split/src/ushaped.rs Cargo.toml

crates/split/src/lib.rs:
crates/split/src/async_trainer.rs:
crates/split/src/baselines.rs:
crates/split/src/checkpoint.rs:
crates/split/src/client.rs:
crates/split/src/config.rs:
crates/split/src/model.rs:
crates/split/src/protocol.rs:
crates/split/src/report.rs:
crates/split/src/resilience.rs:
crates/split/src/scheduler.rs:
crates/split/src/server.rs:
crates/split/src/trainer.rs:
crates/split/src/ushaped.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
