/root/repo/target/debug/deps/stsl_tensor-b77ba36acf6aca2d.d: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/init.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/conv.rs crates/tensor/src/ops/elementwise.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/pool.rs crates/tensor/src/ops/reduce.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs Cargo.toml

/root/repo/target/debug/deps/libstsl_tensor-b77ba36acf6aca2d.rmeta: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/init.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/conv.rs crates/tensor/src/ops/elementwise.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/pool.rs crates/tensor/src/ops/reduce.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/error.rs:
crates/tensor/src/init.rs:
crates/tensor/src/ops/mod.rs:
crates/tensor/src/ops/conv.rs:
crates/tensor/src/ops/elementwise.rs:
crates/tensor/src/ops/matmul.rs:
crates/tensor/src/ops/pool.rs:
crates/tensor/src/ops/reduce.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
