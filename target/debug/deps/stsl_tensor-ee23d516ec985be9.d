/root/repo/target/debug/deps/stsl_tensor-ee23d516ec985be9.d: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/init.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/conv.rs crates/tensor/src/ops/elementwise.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/pool.rs crates/tensor/src/ops/reduce.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/stsl_tensor-ee23d516ec985be9: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/init.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/conv.rs crates/tensor/src/ops/elementwise.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/pool.rs crates/tensor/src/ops/reduce.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/error.rs:
crates/tensor/src/init.rs:
crates/tensor/src/ops/mod.rs:
crates/tensor/src/ops/conv.rs:
crates/tensor/src/ops/elementwise.rs:
crates/tensor/src/ops/matmul.rs:
crates/tensor/src/ops/pool.rs:
crates/tensor/src/ops/reduce.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
