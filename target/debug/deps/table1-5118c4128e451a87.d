/root/repo/target/debug/deps/table1-5118c4128e451a87.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-5118c4128e451a87: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
