/root/repo/target/debug/deps/table1-72c8ccfd7993101f.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-72c8ccfd7993101f.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
