/root/repo/target/debug/deps/training-f4572556f955a6c2.d: crates/bench/benches/training.rs Cargo.toml

/root/repo/target/debug/deps/libtraining-f4572556f955a6c2.rmeta: crates/bench/benches/training.rs Cargo.toml

crates/bench/benches/training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
