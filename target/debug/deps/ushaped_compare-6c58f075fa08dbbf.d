/root/repo/target/debug/deps/ushaped_compare-6c58f075fa08dbbf.d: crates/bench/src/bin/ushaped_compare.rs Cargo.toml

/root/repo/target/debug/deps/libushaped_compare-6c58f075fa08dbbf.rmeta: crates/bench/src/bin/ushaped_compare.rs Cargo.toml

crates/bench/src/bin/ushaped_compare.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
