/root/repo/target/debug/deps/ushaped_compare-75733c576eb747d0.d: crates/bench/src/bin/ushaped_compare.rs Cargo.toml

/root/repo/target/debug/deps/libushaped_compare-75733c576eb747d0.rmeta: crates/bench/src/bin/ushaped_compare.rs Cargo.toml

crates/bench/src/bin/ushaped_compare.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
