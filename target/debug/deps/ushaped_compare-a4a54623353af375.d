/root/repo/target/debug/deps/ushaped_compare-a4a54623353af375.d: crates/bench/src/bin/ushaped_compare.rs

/root/repo/target/debug/deps/ushaped_compare-a4a54623353af375: crates/bench/src/bin/ushaped_compare.rs

crates/bench/src/bin/ushaped_compare.rs:
