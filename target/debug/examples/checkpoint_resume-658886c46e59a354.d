/root/repo/target/debug/examples/checkpoint_resume-658886c46e59a354.d: examples/checkpoint_resume.rs Cargo.toml

/root/repo/target/debug/examples/libcheckpoint_resume-658886c46e59a354.rmeta: examples/checkpoint_resume.rs Cargo.toml

examples/checkpoint_resume.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
