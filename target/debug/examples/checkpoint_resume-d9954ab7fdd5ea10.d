/root/repo/target/debug/examples/checkpoint_resume-d9954ab7fdd5ea10.d: examples/checkpoint_resume.rs

/root/repo/target/debug/examples/checkpoint_resume-d9954ab7fdd5ea10: examples/checkpoint_resume.rs

examples/checkpoint_resume.rs:
