/root/repo/target/debug/examples/geo_hospitals-39270f190fb8a9a9.d: examples/geo_hospitals.rs

/root/repo/target/debug/examples/geo_hospitals-39270f190fb8a9a9: examples/geo_hospitals.rs

examples/geo_hospitals.rs:
