/root/repo/target/debug/examples/geo_hospitals-950daa5473a2a1a3.d: examples/geo_hospitals.rs Cargo.toml

/root/repo/target/debug/examples/libgeo_hospitals-950daa5473a2a1a3.rmeta: examples/geo_hospitals.rs Cargo.toml

examples/geo_hospitals.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
