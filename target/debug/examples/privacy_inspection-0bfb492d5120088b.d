/root/repo/target/debug/examples/privacy_inspection-0bfb492d5120088b.d: examples/privacy_inspection.rs Cargo.toml

/root/repo/target/debug/examples/libprivacy_inspection-0bfb492d5120088b.rmeta: examples/privacy_inspection.rs Cargo.toml

examples/privacy_inspection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
