/root/repo/target/debug/examples/privacy_inspection-365f8ae7496a74b2.d: examples/privacy_inspection.rs

/root/repo/target/debug/examples/privacy_inspection-365f8ae7496a74b2: examples/privacy_inspection.rs

examples/privacy_inspection.rs:
