/root/repo/target/debug/examples/quickstart-de30a2a71162565b.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-de30a2a71162565b.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
