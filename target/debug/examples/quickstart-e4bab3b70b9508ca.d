/root/repo/target/debug/examples/quickstart-e4bab3b70b9508ca.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e4bab3b70b9508ca: examples/quickstart.rs

examples/quickstart.rs:
