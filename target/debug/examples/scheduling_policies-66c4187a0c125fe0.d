/root/repo/target/debug/examples/scheduling_policies-66c4187a0c125fe0.d: examples/scheduling_policies.rs

/root/repo/target/debug/examples/scheduling_policies-66c4187a0c125fe0: examples/scheduling_policies.rs

examples/scheduling_policies.rs:
