/root/repo/target/debug/examples/scheduling_policies-f4b60bcd56d6f64f.d: examples/scheduling_policies.rs Cargo.toml

/root/repo/target/debug/examples/libscheduling_policies-f4b60bcd56d6f64f.rmeta: examples/scheduling_policies.rs Cargo.toml

examples/scheduling_policies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
