/root/repo/target/release/deps/bytes-6a801142171e9a53.d: shims/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-6a801142171e9a53.rlib: shims/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-6a801142171e9a53.rmeta: shims/bytes/src/lib.rs

shims/bytes/src/lib.rs:
