/root/repo/target/release/deps/fault_sweep-73f022a2d91ffdaf.d: crates/bench/src/bin/fault_sweep.rs

/root/repo/target/release/deps/fault_sweep-73f022a2d91ffdaf: crates/bench/src/bin/fault_sweep.rs

crates/bench/src/bin/fault_sweep.rs:
