/root/repo/target/release/deps/proptest-2fdf38cdc36f3fa8.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-2fdf38cdc36f3fa8.rlib: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-2fdf38cdc36f3fa8.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
