/root/repo/target/release/deps/rand-d8e86b67e14e8ef5.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-d8e86b67e14e8ef5.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-d8e86b67e14e8ef5.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
