/root/repo/target/release/deps/serde-79ec03703d87eb64.d: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-79ec03703d87eb64.rlib: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-79ec03703d87eb64.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
