/root/repo/target/release/deps/serde_derive-b42c452c34750e13.d: shims/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-b42c452c34750e13.so: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
