/root/repo/target/release/deps/serde_json-b5f799cac80e5bc3.d: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-b5f799cac80e5bc3.rlib: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-b5f799cac80e5bc3.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
