/root/repo/target/release/deps/spatio_temporal_split_learning-0c30f4b1f8918f8d.d: src/lib.rs

/root/repo/target/release/deps/libspatio_temporal_split_learning-0c30f4b1f8918f8d.rlib: src/lib.rs

/root/repo/target/release/deps/libspatio_temporal_split_learning-0c30f4b1f8918f8d.rmeta: src/lib.rs

src/lib.rs:
