/root/repo/target/release/deps/stsl_bench-1523bebf94b5fa49.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libstsl_bench-1523bebf94b5fa49.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libstsl_bench-1523bebf94b5fa49.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
