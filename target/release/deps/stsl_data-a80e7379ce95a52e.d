/root/repo/target/release/deps/stsl_data-a80e7379ce95a52e.d: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/batching.rs crates/data/src/cifar.rs crates/data/src/dataset.rs crates/data/src/kfold.rs crates/data/src/partition.rs crates/data/src/synthetic.rs

/root/repo/target/release/deps/libstsl_data-a80e7379ce95a52e.rlib: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/batching.rs crates/data/src/cifar.rs crates/data/src/dataset.rs crates/data/src/kfold.rs crates/data/src/partition.rs crates/data/src/synthetic.rs

/root/repo/target/release/deps/libstsl_data-a80e7379ce95a52e.rmeta: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/batching.rs crates/data/src/cifar.rs crates/data/src/dataset.rs crates/data/src/kfold.rs crates/data/src/partition.rs crates/data/src/synthetic.rs

crates/data/src/lib.rs:
crates/data/src/augment.rs:
crates/data/src/batching.rs:
crates/data/src/cifar.rs:
crates/data/src/dataset.rs:
crates/data/src/kfold.rs:
crates/data/src/partition.rs:
crates/data/src/synthetic.rs:
