/root/repo/target/release/deps/stsl_nn-07ae9fefcb7be6b2.d: crates/nn/src/lib.rs crates/nn/src/clip.rs crates/nn/src/gradcheck.rs crates/nn/src/layer.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/activation.rs crates/nn/src/layers/avgpool2d.rs crates/nn/src/layers/batchnorm.rs crates/nn/src/layers/conv2d.rs crates/nn/src/layers/dense.rs crates/nn/src/layers/maxpool2d.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/summary.rs

/root/repo/target/release/deps/libstsl_nn-07ae9fefcb7be6b2.rlib: crates/nn/src/lib.rs crates/nn/src/clip.rs crates/nn/src/gradcheck.rs crates/nn/src/layer.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/activation.rs crates/nn/src/layers/avgpool2d.rs crates/nn/src/layers/batchnorm.rs crates/nn/src/layers/conv2d.rs crates/nn/src/layers/dense.rs crates/nn/src/layers/maxpool2d.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/summary.rs

/root/repo/target/release/deps/libstsl_nn-07ae9fefcb7be6b2.rmeta: crates/nn/src/lib.rs crates/nn/src/clip.rs crates/nn/src/gradcheck.rs crates/nn/src/layer.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/activation.rs crates/nn/src/layers/avgpool2d.rs crates/nn/src/layers/batchnorm.rs crates/nn/src/layers/conv2d.rs crates/nn/src/layers/dense.rs crates/nn/src/layers/maxpool2d.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/summary.rs

crates/nn/src/lib.rs:
crates/nn/src/clip.rs:
crates/nn/src/gradcheck.rs:
crates/nn/src/layer.rs:
crates/nn/src/layers/mod.rs:
crates/nn/src/layers/activation.rs:
crates/nn/src/layers/avgpool2d.rs:
crates/nn/src/layers/batchnorm.rs:
crates/nn/src/layers/conv2d.rs:
crates/nn/src/layers/dense.rs:
crates/nn/src/layers/maxpool2d.rs:
crates/nn/src/loss.rs:
crates/nn/src/metrics.rs:
crates/nn/src/model.rs:
crates/nn/src/optim.rs:
crates/nn/src/summary.rs:
