/root/repo/target/release/deps/stsl_privacy-89941ab28be7983d.d: crates/privacy/src/lib.rs crates/privacy/src/image.rs crates/privacy/src/inversion.rs crates/privacy/src/metrics.rs crates/privacy/src/visualize.rs

/root/repo/target/release/deps/libstsl_privacy-89941ab28be7983d.rlib: crates/privacy/src/lib.rs crates/privacy/src/image.rs crates/privacy/src/inversion.rs crates/privacy/src/metrics.rs crates/privacy/src/visualize.rs

/root/repo/target/release/deps/libstsl_privacy-89941ab28be7983d.rmeta: crates/privacy/src/lib.rs crates/privacy/src/image.rs crates/privacy/src/inversion.rs crates/privacy/src/metrics.rs crates/privacy/src/visualize.rs

crates/privacy/src/lib.rs:
crates/privacy/src/image.rs:
crates/privacy/src/inversion.rs:
crates/privacy/src/metrics.rs:
crates/privacy/src/visualize.rs:
