/root/repo/target/release/deps/stsl_simnet-67046ad6170b1c9e.d: crates/simnet/src/lib.rs crates/simnet/src/event.rs crates/simnet/src/fault.rs crates/simnet/src/link.rs crates/simnet/src/network.rs crates/simnet/src/stats.rs crates/simnet/src/time.rs crates/simnet/src/topology.rs crates/simnet/src/trace.rs

/root/repo/target/release/deps/libstsl_simnet-67046ad6170b1c9e.rlib: crates/simnet/src/lib.rs crates/simnet/src/event.rs crates/simnet/src/fault.rs crates/simnet/src/link.rs crates/simnet/src/network.rs crates/simnet/src/stats.rs crates/simnet/src/time.rs crates/simnet/src/topology.rs crates/simnet/src/trace.rs

/root/repo/target/release/deps/libstsl_simnet-67046ad6170b1c9e.rmeta: crates/simnet/src/lib.rs crates/simnet/src/event.rs crates/simnet/src/fault.rs crates/simnet/src/link.rs crates/simnet/src/network.rs crates/simnet/src/stats.rs crates/simnet/src/time.rs crates/simnet/src/topology.rs crates/simnet/src/trace.rs

crates/simnet/src/lib.rs:
crates/simnet/src/event.rs:
crates/simnet/src/fault.rs:
crates/simnet/src/link.rs:
crates/simnet/src/network.rs:
crates/simnet/src/stats.rs:
crates/simnet/src/time.rs:
crates/simnet/src/topology.rs:
crates/simnet/src/trace.rs:
