/root/repo/target/release/deps/stsl_tensor-0d8c59e7d5cdd3b5.d: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/init.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/conv.rs crates/tensor/src/ops/elementwise.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/pool.rs crates/tensor/src/ops/reduce.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/libstsl_tensor-0d8c59e7d5cdd3b5.rlib: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/init.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/conv.rs crates/tensor/src/ops/elementwise.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/pool.rs crates/tensor/src/ops/reduce.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/libstsl_tensor-0d8c59e7d5cdd3b5.rmeta: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/init.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/conv.rs crates/tensor/src/ops/elementwise.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/pool.rs crates/tensor/src/ops/reduce.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/error.rs:
crates/tensor/src/init.rs:
crates/tensor/src/ops/mod.rs:
crates/tensor/src/ops/conv.rs:
crates/tensor/src/ops/elementwise.rs:
crates/tensor/src/ops/matmul.rs:
crates/tensor/src/ops/pool.rs:
crates/tensor/src/ops/reduce.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
