/root/repo/target/release/examples/checkpoint_resume-6d97b03e1414ddd6.d: examples/checkpoint_resume.rs

/root/repo/target/release/examples/checkpoint_resume-6d97b03e1414ddd6: examples/checkpoint_resume.rs

examples/checkpoint_resume.rs:
