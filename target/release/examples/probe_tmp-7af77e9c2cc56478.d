/root/repo/target/release/examples/probe_tmp-7af77e9c2cc56478.d: crates/split/examples/probe_tmp.rs

/root/repo/target/release/examples/probe_tmp-7af77e9c2cc56478: crates/split/examples/probe_tmp.rs

crates/split/examples/probe_tmp.rs:
