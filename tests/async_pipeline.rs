//! Integration of the async (network-simulated) trainer with the rest of
//! the stack, and its agreement with the synchronous trainer where they
//! must agree.

use spatio_temporal_split_learning::data::SyntheticCifar;
use spatio_temporal_split_learning::simnet::{Link, SimDuration, StarTopology};
use spatio_temporal_split_learning::split::{
    AsyncSplitTrainer, ComputeModel, CutPoint, SchedulingPolicy, SpatioTemporalTrainer, SplitConfig,
};

fn data(n: usize, seed: u64) -> spatio_temporal_split_learning::data::ImageDataset {
    SyntheticCifar::new(seed)
        .difficulty(0.08)
        .generate_sized(n, 16)
}

#[test]
fn async_serves_same_batch_count_as_sync() {
    let train = data(96, 1);
    let test = data(24, 2);
    let cfg = || {
        SplitConfig::tiny(CutPoint(1), 3)
            .epochs(2)
            .batch_size(16)
            .seed(10)
    };
    let mut sync = SpatioTemporalTrainer::new(cfg(), &train).expect("valid config");
    sync.train(&test);
    let sync_steps = sync.server_mut().steps();

    let topology = StarTopology::uniform(3, Link::wan(10.0, 100.0));
    let mut asynct = AsyncSplitTrainer::new(
        cfg(),
        &train,
        topology,
        SchedulingPolicy::Fifo,
        ComputeModel::default(),
    )
    .expect("valid config");
    let report = asynct.run(&test);
    let async_steps: u64 = report.served_per_client.iter().sum();
    assert_eq!(
        async_steps, sync_steps,
        "both trainers must process every batch exactly once"
    );
    assert_eq!(report.scheduler_drops, 0);
    assert_eq!(report.network_drops, 0);
}

#[test]
fn fifo_starves_far_clients_less_than_never_but_round_robin_is_fairer() {
    // One near + three far clients, slow server: FIFO lets the near client
    // inject more batches per unit time and get served disproportionately
    // while round-robin equalizes — §II's "biased learning" in miniature.
    let train = data(192, 3);
    let test = data(24, 4);
    let topology = StarTopology::new(vec![
        Link::wan(1.0, 100.0),
        Link::wan(120.0, 100.0),
        Link::wan(120.0, 100.0),
        Link::wan(120.0, 100.0),
    ]);
    let compute = ComputeModel {
        client_batch: SimDuration::from_millis(2),
        server_batch: SimDuration::from_millis(8),
        retry_timeout: SimDuration::from_millis(400),
    };
    let run = |policy| {
        let cfg = SplitConfig::tiny(CutPoint(1), 4)
            .epochs(2)
            .batch_size(16)
            .seed(6);
        let mut t = AsyncSplitTrainer::new(cfg, &train, topology.clone(), policy, compute)
            .expect("valid config");
        t.run(&test)
    };
    let fifo = run(SchedulingPolicy::Fifo);
    let rr = run(SchedulingPolicy::RoundRobin);
    assert!(
        rr.service_imbalance <= fifo.service_imbalance + 1e-9,
        "round-robin ({:.4}) must not be less fair than fifo ({:.4})",
        rr.service_imbalance,
        fifo.service_imbalance
    );
    // Everyone eventually completes the same number of batches overall
    // (the protocol is closed-loop), so totals match.
    assert_eq!(
        fifo.served_per_client.iter().sum::<u64>(),
        rr.served_per_client.iter().sum::<u64>()
    );
}

#[test]
fn staleness_drop_bounds_queue_wait() {
    let train = data(128, 5);
    let test = data(16, 6);
    let topology = StarTopology::uniform(4, Link::wan(2.0, 100.0));
    // Server much slower than clients: a queue must form.
    let compute = ComputeModel {
        client_batch: SimDuration::from_millis(1),
        server_batch: SimDuration::from_millis(50),
        retry_timeout: SimDuration::from_millis(100),
    };
    let max_age = SimDuration::from_millis(60);
    let cfg = SplitConfig::tiny(CutPoint(1), 4)
        .epochs(1)
        .batch_size(16)
        .seed(2);
    let mut t = AsyncSplitTrainer::new(
        cfg,
        &train,
        topology,
        SchedulingPolicy::StalenessDrop { max_age },
        compute,
    )
    .expect("valid config");
    let report = t.run(&test);
    assert!(
        report.mean_queue_wait_ms <= max_age.as_millis() as f64 + 1.0,
        "served batches waited {:.1} ms on average, above the {} ms staleness bound",
        report.mean_queue_wait_ms,
        max_age.as_millis()
    );
}

#[test]
fn ideal_network_has_near_zero_sim_overhead() {
    let train = data(48, 7);
    let test = data(16, 8);
    let topology = StarTopology::uniform(1, Link::ideal());
    let compute = ComputeModel {
        client_batch: SimDuration::from_micros(1),
        server_batch: SimDuration::from_micros(1),
        retry_timeout: SimDuration::from_millis(1),
    };
    let cfg = SplitConfig::tiny(CutPoint(1), 1)
        .epochs(1)
        .batch_size(16)
        .seed(0);
    let mut t = AsyncSplitTrainer::new(cfg, &train, topology, SchedulingPolicy::Fifo, compute)
        .expect("valid config");
    let report = t.run(&test);
    assert!(
        report.sim_seconds < 0.01,
        "sim time {} too large for an ideal network",
        report.sim_seconds
    );
    assert_eq!(
        report.mean_queue_depth, 1.0,
        "single client: queue depth is always exactly 1 at arrival"
    );
}
