//! Byzantine-resilience integration tests: adversarial personas vs the
//! robust-aggregation + attack-aware-guard defense stack.
//!
//! These pin the *mechanism* behind E15's headline table on a config
//! small enough for CI: poisoning degrades the undefended windowed
//! mean, the robust stack resists, persistent attackers quarantine via
//! window-verdict scoring (deferred clean-credit), the optimizer
//! cadence survives the exile (window shrink), membership churn cannot
//! launder an accrued anomaly score, and an attack-free run is exactly
//! the run where the adversarial machinery doesn't exist.

use spatio_temporal_split_learning::simnet::{
    AttackSpec, EndSystemId, FaultPlan, Link, SimDuration, SimTime, StarTopology, TraceKind,
};
use spatio_temporal_split_learning::split::{
    AggregationPolicy, AsyncSplitTrainer, ComputeModel, CutPoint, GuardConfig, SchedulingPolicy,
    SplitConfig,
};

fn data(n: usize, seed: u64) -> spatio_temporal_split_learning::data::ImageDataset {
    spatio_temporal_split_learning::data::SyntheticCifar::new(seed)
        .difficulty(0.06)
        .generate_sized(n, 16)
}

/// Sign-flip persona on the first `attackers` end-systems for the whole
/// run — the E15 attack at test scale.
fn sign_flip(attackers: usize, gain: f64) -> FaultPlan {
    FaultPlan::new().adversaries(
        attackers,
        AttackSpec::SignFlip { gain },
        SimTime::ZERO,
        SimTime::from_millis(100_000_000),
    )
}

/// The bench's attack-tolerant guard tuning (DESIGN §13): blow-up
/// rescue reserved for genuine divergence, probation outlasting the
/// run, wide outlier factor so honest tails never exile.
fn attack_guard() -> GuardConfig {
    GuardConfig {
        loss_blowup: 100.0,
        probation: SimDuration::from_millis(600_000),
        outlier_factor: 8.0,
        quarantine_threshold: 4.0,
        ..GuardConfig::default()
    }
}

fn build(
    clients: usize,
    epochs: usize,
    plan: FaultPlan,
    policy: Option<AggregationPolicy>,
    guard: Option<GuardConfig>,
    train: &spatio_temporal_split_learning::data::ImageDataset,
) -> AsyncSplitTrainer {
    let cfg = SplitConfig::tiny(CutPoint(1), clients)
        .epochs(epochs)
        .batch_size(8)
        .learning_rate(0.05)
        .seed(33);
    let top = StarTopology::uniform(clients, Link::wan(5.0, 100.0));
    let mut t = AsyncSplitTrainer::new(
        cfg,
        train,
        top,
        SchedulingPolicy::Fifo,
        ComputeModel::default(),
    )
    .unwrap()
    .with_fault_plan(plan);
    if let Some(cfg) = guard {
        t = t.with_integrity_guard(cfg);
    }
    if let Some(policy) = policy {
        t = t.with_robust_aggregation(policy, clients);
    }
    t
}

/// Personas fire, are counted, are traced — and only on the end-systems
/// the plan names. Honest uplinks are untouched.
#[test]
fn adversaries_poison_only_their_own_uplinks() {
    let train = data(120, 9);
    let test = data(40, 10);
    let mut t = build(
        5,
        2,
        sign_flip(2, 4.0),
        Some(AggregationPolicy::CoordinateMedian),
        None,
        &train,
    );
    t.enable_trace();
    let r = t.run(&test);
    assert!(r.attacks_injected > 0, "personas never fired: {r:?}");
    let trace = t.trace().unwrap();
    assert_eq!(
        trace.count(TraceKind::AttackInjected) as u64,
        r.attacks_injected
    );
    for honest in 2..5 {
        assert_eq!(
            trace.count_for(TraceKind::AttackInjected, EndSystemId(honest)),
            0,
            "honest end-system {honest} traced as attacking"
        );
    }
}

/// The E15 headline at test scale: the same 40 % sign-flip cohort wrecks
/// the undefended windowed mean but not the robust stack. Everything is
/// seeded, so the accuracies are exact reproducible values; the margins
/// assert the *ordering* with room to spare.
#[test]
fn robust_stack_resists_where_plain_mean_degrades() {
    // One optimizer step per full window means ~5× fewer steps than
    // per-batch training, so this test needs the larger run (and the
    // windowed trainer's larger learning rate) for the clean baseline
    // to actually learn.
    let train = data(600, 9);
    let test = data(100, 10);
    let clean = build(
        5,
        6,
        FaultPlan::new(),
        Some(AggregationPolicy::Mean),
        None,
        &train,
    )
    .run(&test)
    .final_accuracy;
    let poisoned_mean = build(
        5,
        6,
        sign_flip(2, 4.0),
        Some(AggregationPolicy::Mean),
        None,
        &train,
    )
    .run(&test)
    .final_accuracy;
    // The defense's headline is the active-fleet accuracy: the exiled
    // attackers' own encoders trained against their poisoned uplinks —
    // damage no server-side policy can repair (DESIGN §13).
    let defended = build(
        5,
        6,
        sign_flip(2, 4.0),
        Some(AggregationPolicy::CoordinateMedian),
        Some(attack_guard()),
        &train,
    )
    .run(&test)
    .active_accuracy;
    assert!(
        clean - poisoned_mean > 0.10,
        "plain mean should lose >10 pts under 40% sign-flip: clean {clean} poisoned {poisoned_mean}"
    );
    assert!(
        defended - poisoned_mean > 0.05,
        "robust stack should clearly beat the undefended mean: defended {defended} mean {poisoned_mean}"
    );
}

/// A patient sign-flipper is flagged by the window statistics every
/// apply and quarantines out of the fleet. This only works because
/// clean-credit is deferred to the window verdict: with per-arrival
/// decay a persistent attacker's score converges to 2, forever under
/// the threshold of 4.
#[test]
fn persistent_attacker_quarantines_via_window_verdict() {
    let train = data(200, 9);
    let test = data(40, 10);
    let mut t = build(
        5,
        3,
        sign_flip(1, 4.0),
        Some(AggregationPolicy::CoordinateMedian),
        Some(attack_guard()),
        &train,
    );
    t.enable_trace();
    let r = t.run(&test);
    assert!(r.quarantines >= 1, "attacker never quarantined: {r:?}");
    let trace = t.trace().unwrap();
    assert!(trace.count_for(TraceKind::Quarantine, EndSystemId(0)) >= 1);
    for honest in 1..5 {
        assert_eq!(
            trace.count_for(TraceKind::Quarantine, EndSystemId(honest)),
            0,
            "honest end-system {honest} was exiled"
        );
    }
    // The flags that earned the exile came from the robust window.
    assert!(trace.count_for(TraceKind::RobustOutlier, EndSystemId(0)) as u64 >= 4);
    // Excluding the exiled attacker's self-trashed encoder from the
    // average can only raise it: the active-fleet headline dominates
    // the whole-fleet mean.
    assert!(
        r.active_accuracy >= r.final_accuracy,
        "active {} < fleet {}",
        r.active_accuracy,
        r.final_accuracy
    );
}

/// Exiling the attacker shrinks the live window to the surviving fleet
/// (DESIGN §13), so full windows — and optimizer steps — keep coming
/// after the quarantine instead of waiting for an update that will
/// never arrive.
#[test]
fn optimizer_cadence_survives_quarantine() {
    let train = data(200, 9);
    let test = data(40, 10);
    let mut t = build(
        5,
        3,
        sign_flip(1, 4.0),
        Some(AggregationPolicy::CoordinateMedian),
        Some(attack_guard()),
        &train,
    );
    t.enable_trace();
    let r = t.run(&test);
    assert!(r.quarantines >= 1, "scenario needs a quarantine: {r:?}");
    let trace = t.trace().unwrap();
    let exile_at = trace
        .events()
        .iter()
        .find(|e| e.kind == TraceKind::Quarantine)
        .expect("quarantine traced")
        .at;
    let applies_after = trace
        .events()
        .iter()
        .filter(|e| e.kind == TraceKind::RobustApply && e.at > exile_at)
        .count();
    assert!(
        applies_after >= 2,
        "window never refilled after the exile (applies after {applies_after})"
    );
}

/// A fault plan declaring zero adversaries is bitwise the same run as no
/// fault plan at all: the persona RNG streams are derived lazily, so an
/// attack-free fleet doesn't even observe that the feature exists.
#[test]
fn zero_attackers_matches_no_fault_plan_bitwise() {
    let train = data(120, 9);
    let test = data(40, 10);
    let a = build(
        4,
        2,
        FaultPlan::new(),
        Some(AggregationPolicy::TrimmedMean { trim: 0.25 }),
        Some(attack_guard()),
        &train,
    )
    .run(&test);
    let b = build(
        4,
        2,
        sign_flip(0, 4.0),
        Some(AggregationPolicy::TrimmedMean { trim: 0.25 }),
        Some(attack_guard()),
        &train,
    )
    .run(&test);
    assert_eq!(a.final_accuracy.to_bits(), b.final_accuracy.to_bits());
    // Nothing exiled ⇒ the active fleet IS the fleet.
    assert_eq!(a.active_accuracy.to_bits(), a.final_accuracy.to_bits());
    assert_eq!(a.attacks_injected, 0);
    assert_eq!(b.attacks_injected, 0);
    assert_eq!(a.robust_applies, b.robust_applies);
    assert_eq!(a.updates_trimmed, b.updates_trimmed);
    assert_eq!(a.served_per_client, b.served_per_client);
    assert_eq!(a.sim_seconds.to_bits(), b.sim_seconds.to_bits());
}

/// Regression (quarantine × membership): departing and rejoining must
/// not launder an accrued anomaly score. The attacker earns outlier
/// flags, leaves before the threshold trips, rejoins, and must be
/// exiled on its *remaining* allowance — the rejoin resyncs batches,
/// not reputations.
#[test]
fn rejoin_does_not_launder_anomaly_score() {
    let train = data(240, 9);
    let test = data(40, 10);
    // Churn window placed mid-run: late enough that the attacker has
    // accrued flags, early enough that post-rejoin windows remain.
    let plan = sign_flip(1, 4.0)
        .client_leave(EndSystemId(0), SimTime::from_millis(400))
        .client_rejoin(EndSystemId(0), SimTime::from_millis(500));
    let mut t = build(
        5,
        3,
        plan,
        Some(AggregationPolicy::CoordinateMedian),
        Some(attack_guard()),
        &train,
    );
    t.enable_trace();
    let r = t.run(&test);
    let trace = t.trace().unwrap();
    let rejoin_at = trace
        .events()
        .iter()
        .find(|e| e.kind == TraceKind::ClientRejoin)
        .expect("rejoin traced")
        .at;
    let flags_before = trace
        .events()
        .iter()
        .filter(|e| {
            e.kind == TraceKind::RobustOutlier && e.end_system == EndSystemId(0) && e.at < rejoin_at
        })
        .count();
    assert!(
        flags_before >= 1,
        "scenario needs pre-departure flags (got {flags_before}): {r:?}"
    );
    assert!(r.quarantines >= 1, "attacker never quarantined: {r:?}");
    let exile_at = trace
        .events()
        .iter()
        .find(|e| e.kind == TraceKind::Quarantine && e.end_system == EndSystemId(0))
        .expect("attacker quarantine traced")
        .at;
    let flags_between = trace
        .events()
        .iter()
        .filter(|e| {
            e.kind == TraceKind::RobustOutlier
                && e.end_system == EndSystemId(0)
                && e.at >= rejoin_at
                && e.at <= exile_at
        })
        .count();
    // Threshold is 4; with pre-departure credit intact the post-rejoin
    // allowance is strictly smaller. A laundered score would need the
    // full 4 flags again.
    assert!(
        (flags_before + flags_between) >= 4 && flags_between < 4,
        "rejoin laundered the anomaly score: {flags_before} flags before, {flags_between} after"
    );
}
