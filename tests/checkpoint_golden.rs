//! Golden-file checkpoint compatibility test.
//!
//! `tests/fixtures/checkpoint_golden.json` is a checkpoint committed to the
//! repository. This test proves that checkpoints written by past versions of
//! the code keep loading and restoring — i.e. the on-disk format (struct
//! field names, tensor encoding, config schema) has not drifted. If a change
//! to `Checkpoint`, `SplitConfig`, or the tensor serde breaks compatibility
//! on purpose, regenerate the fixture with:
//!
//! ```text
//! STSL_REGEN_GOLDEN=1 cargo test --test checkpoint_golden
//! ```
//!
//! and commit the new fixture together with the format change.

use spatio_temporal_split_learning::data::SyntheticCifar;
use spatio_temporal_split_learning::split::{
    Checkpoint, CnnArch, CutPoint, PoolKind, SpatioTemporalTrainer, SplitConfig,
};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/checkpoint_golden.json"
);

/// The micro deployment the fixture was generated from: a single-block CNN
/// on 8x8 inputs so the committed JSON stays a few kilobytes.
fn golden_config() -> SplitConfig {
    let arch = CnnArch {
        in_channels: 3,
        image_side: 8,
        filters: vec![2],
        dense_units: 4,
        classes: 10,
        pool: PoolKind::Max,
    };
    SplitConfig::tiny(CutPoint(1), 2)
        .arch(arch)
        .epochs(1)
        .batch_size(8)
        .seed(1234)
}

fn golden_data() -> (
    spatio_temporal_split_learning::data::ImageDataset,
    spatio_temporal_split_learning::data::ImageDataset,
) {
    let train = SyntheticCifar::new(21)
        .difficulty(0.05)
        .generate_sized(32, 8);
    let test = SyntheticCifar::new(22)
        .difficulty(0.05)
        .generate_sized(16, 8);
    (train, test)
}

#[test]
fn golden_checkpoint_loads_and_roundtrips() {
    let (train, test) = golden_data();

    if std::env::var_os("STSL_REGEN_GOLDEN").is_some() {
        let mut t = SpatioTemporalTrainer::new(golden_config(), &train).unwrap();
        t.run_epoch(0);
        t.checkpoint().save(FIXTURE).unwrap();
    }

    // 1. The committed fixture still deserializes.
    let golden = Checkpoint::load(FIXTURE)
        .expect("committed golden checkpoint must keep loading; see module docs");
    assert_eq!(golden.config.end_systems, 2);
    assert_eq!(golden.config.cut, CutPoint(1));
    assert_eq!(golden.config.arch.filters, vec![2]);
    assert_eq!(golden.client_states.len(), 2);
    assert!(!golden.server_state.is_empty());

    // 2. It restores into a freshly built deployment of its own config,
    //    and the restored deployment behaves deterministically.
    let mut restored = SpatioTemporalTrainer::new(golden.config.clone(), &train).unwrap();
    restored.restore(&golden).unwrap();
    let acc = restored.evaluate(&test);
    assert_eq!(
        restored.evaluate(&test),
        acc,
        "evaluation must be deterministic"
    );

    // A trainer with different weights (pre-restore seed differs from the
    // trained fixture weights) must be changed by the restore: its own
    // checkpoint now equals the golden state.
    let re_ckpt = restored.checkpoint();
    assert_eq!(re_ckpt.server_state, golden.server_state);
    assert_eq!(re_ckpt.client_states, golden.client_states);

    // 3. Save -> load is value- and byte-stable: no format drift within
    //    one build either.
    let dir = std::env::temp_dir().join("stsl_golden_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("golden_roundtrip.json");
    golden.save(&path).unwrap();
    let back = Checkpoint::load(&path).unwrap();
    assert_eq!(back.server_state, golden.server_state);
    assert_eq!(back.client_states, golden.client_states);
    let first = std::fs::read(&path).unwrap();
    back.save(&path).unwrap();
    let second = std::fs::read(&path).unwrap();
    assert_eq!(first, second, "serializer output must be reproducible");
    std::fs::remove_file(&path).ok();
}
