//! Churn chaos integration tests: dynamic membership under crashes,
//! departures and rejoins; quorum loss as a typed error instead of a
//! hang; and property-based checks that the membership state machine
//! never admits an illegal transition and always conserves
//! `joined - departed = active + suspect`.

use proptest::prelude::*;
use spatio_temporal_split_learning::data::SyntheticCifar;
use spatio_temporal_split_learning::simnet::{
    EndSystemId, FaultPlan, Link, SimDuration, SimTime, StarTopology, TraceKind,
};
use spatio_temporal_split_learning::split::{
    AsyncSplitTrainer, ComputeModel, CutPoint, Membership, MembershipState, SchedulingPolicy,
    SplitConfig,
};

fn data(n: usize, seed: u64) -> spatio_temporal_split_learning::data::ImageDataset {
    SyntheticCifar::new(seed)
        .difficulty(0.08)
        .generate_sized(n, 16)
}

fn ms(x: u64) -> SimTime {
    SimTime::from_millis(x)
}

/// A client that crashes, recovers, departs the fleet, and rejoins
/// mid-training must resume from its last acked batch and contribute to
/// the final model — end-to-end through checkpoint restore, membership
/// bookkeeping, and the rewind-based resync.
#[test]
fn crashed_departed_rejoined_client_still_contributes() {
    let train = data(48, 1);
    let test = data(24, 2);
    let topology = StarTopology::uniform(2, Link::wan(5.0, 100.0));
    let plan = FaultPlan::new()
        .client_crash(EndSystemId(0), ms(40), ms(80))
        .client_leave(EndSystemId(0), ms(150))
        .client_rejoin(EndSystemId(0), ms(400));
    let cfg = SplitConfig::tiny(CutPoint(1), 2)
        .epochs(3)
        .batch_size(8)
        .seed(7);
    let mut t = AsyncSplitTrainer::new(
        cfg,
        &train,
        topology,
        SchedulingPolicy::Fifo,
        ComputeModel::default(),
    )
    .unwrap()
    .with_fault_plan(plan)
    .with_auto_checkpoint(SimDuration::from_millis(30));
    t.enable_trace();
    let r = t.run(&test);

    assert_eq!(r.crash_events, 1);
    assert_eq!(r.recovery_events, 1);
    assert_eq!(r.clients_departed, 1);
    assert_eq!(r.rejoins, 1);
    assert_eq!(r.clients_joined, 0, "no scheduled joiners in this plan");
    // 9 batches per client; the crash may cost one, the departure none
    // (its un-acked batch is rewound and replayed after the rejoin).
    // Client 0 cannot have been served this much before its 150 ms
    // departure, so the rejoin demonstrably contributed.
    assert!(r.served_per_client[0] >= 8, "{:?}", r.served_per_client);
    assert_eq!(r.served_per_client[1], 9);
    assert!(r.final_accuracy.is_finite());

    let trace = t.trace().unwrap();
    assert_eq!(trace.count(TraceKind::ClientLeave), 1);
    assert_eq!(trace.count(TraceKind::ClientRejoin), 1);
    assert!(t.membership().conserves());
}

/// When every member departs with work left and nothing scheduled to
/// repopulate the fleet, `try_run` terminates immediately with a typed
/// error — no hang, no panic, no silent half-report.
#[test]
fn quorum_zero_terminates_with_typed_error() {
    let train = data(48, 1);
    let test = data(24, 2);
    let topology = StarTopology::uniform(2, Link::wan(5.0, 100.0));
    let plan = FaultPlan::new()
        .client_leave(EndSystemId(0), ms(60))
        .client_leave(EndSystemId(1), ms(90));
    let cfg = SplitConfig::tiny(CutPoint(1), 2)
        .epochs(50)
        .batch_size(8)
        .seed(7);
    let mut t = AsyncSplitTrainer::new(
        cfg,
        &train,
        topology,
        SchedulingPolicy::Fifo,
        ComputeModel::default(),
    )
    .unwrap()
    .with_fault_plan(plan);
    let lost = t.try_run(&test).unwrap_err();
    assert_eq!(lost.joined, 2);
    assert_eq!(lost.departed, 2);
    assert_eq!(lost.at_us, 90_000, "detected at the second departure");
    assert!(lost.to_string().contains("quorum lost"));
    // The legacy `run` path still returns a report (with the simulation
    // cut short at quorum loss) for callers that cannot handle errors.
    let r = t.run(&test);
    assert_eq!(r.clients_departed, 2);
}

/// A fleet that drains only because everyone finished is NOT a quorum
/// loss: departures after training completes are clean shutdowns.
#[test]
fn departures_after_completion_are_not_quorum_loss() {
    let train = data(32, 1);
    let test = data(16, 2);
    let topology = StarTopology::uniform(2, Link::wan(5.0, 100.0));
    // 2 batches per client at ~16 ms per roundtrip: done well before 5 s.
    let plan = FaultPlan::new()
        .client_leave(EndSystemId(0), ms(5_000))
        .client_leave(EndSystemId(1), ms(5_000));
    let cfg = SplitConfig::tiny(CutPoint(1), 2)
        .epochs(1)
        .batch_size(8)
        .seed(7);
    let mut t = AsyncSplitTrainer::new(
        cfg,
        &train,
        topology,
        SchedulingPolicy::Fifo,
        ComputeModel::default(),
    )
    .unwrap()
    .with_fault_plan(plan);
    let r = t
        .try_run(&test)
        .expect("completed fleet is not quorum loss");
    assert_eq!(r.served_per_client, vec![2, 2]);
}

/// A seeded churn plan drives a full run deterministically: the same
/// seed reproduces the same joins, departures, rejoins and trace.
#[test]
fn seeded_churn_plans_run_deterministically() {
    let mk = || {
        let train = data(72, 1);
        let test = data(24, 2);
        // 2 founding members + 1 pre-declared joiner = fleet of 3.
        let topology = StarTopology::uniform(3, Link::wan(5.0, 100.0));
        let plan = FaultPlan::churn(2, 1, SimDuration::from_millis(600), 11, 0.5);
        let cfg = SplitConfig::tiny(CutPoint(1), 3)
            .epochs(2)
            .batch_size(8)
            .seed(7);
        let mut t = AsyncSplitTrainer::new(
            cfg,
            &train,
            topology,
            SchedulingPolicy::Fifo,
            ComputeModel::default(),
        )
        .unwrap()
        .with_fault_plan(plan)
        .with_auto_checkpoint(SimDuration::from_millis(50));
        t.enable_trace();
        let r = t.run(&test);
        let csv = t.trace().unwrap().to_csv();
        let conserves = t.membership().conserves();
        (r, csv, conserves)
    };
    let (a, csv_a, conserves_a) = mk();
    let (b, csv_b, _) = mk();
    assert_eq!(csv_a, csv_b, "same seed, same churn, same trace");
    assert_eq!(a.clients_joined, b.clients_joined);
    assert_eq!(a.final_accuracy, b.final_accuracy);
    assert_eq!(a.clients_joined, 1, "the one pre-declared joiner joined");
    assert!(conserves_a);
}

const ALL_STATES: [MembershipState; 5] = [
    MembershipState::Joining,
    MembershipState::Active,
    MembershipState::Suspect,
    MembershipState::Departed,
    MembershipState::Rejoining,
];

/// The legal lifecycle edges, mirrored from the membership module's
/// documentation. Everything else must be rejected.
fn legal(from: MembershipState, to: MembershipState) -> bool {
    use MembershipState::*;
    matches!(
        (from, to),
        (Joining, Active)
            | (Active, Suspect)
            | (Suspect, Active)
            | (Active, Departed)
            | (Suspect, Departed)
            | (Departed, Rejoining)
            | (Rejoining, Active)
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Driving the registry with arbitrary transition requests never
    /// admits an illegal edge, never corrupts unrelated clients, and
    /// conserves `joined - departed = active + suspect` at every step.
    #[test]
    fn membership_never_admits_illegal_transitions(
        total in 1usize..6,
        dormant_mask in 0usize..32,
        steps in proptest::collection::vec((0usize..8, 0usize..5), 0..64)
    ) {
        let mut m = Membership::new(total);
        for i in 0..total {
            if dormant_mask & (1 << i) != 0 {
                m = m.dormant(i);
            }
        }
        prop_assert!(m.conserves());
        for (client, to_idx) in steps {
            let to = ALL_STATES[to_idx];
            let before = m.state(client);
            let result = m.transition(client, to);
            match before {
                Some(from) if legal(from, to) => {
                    prop_assert!(result.is_ok(), "legal {:?}->{:?} rejected", from, to);
                    prop_assert_eq!(m.state(client), Some(to));
                }
                _ => {
                    // Unknown client or illegal edge: rejected, and the
                    // client's state is untouched.
                    prop_assert!(result.is_err());
                    prop_assert_eq!(m.state(client), before);
                }
            }
            prop_assert!(m.conserves(), "conservation broken after {:?}", to);
            prop_assert_eq!(
                m.member_count(),
                m.active_count() + m.suspect_count()
            );
        }
    }
}
