//! End-to-end crash→restart→resume through the on-disk checkpoint ring:
//! a guarded training run persists its ring, the process "dies", and a
//! fresh process resumes from the newest readable entry — even when the
//! newest file was truncated by the crash mid-write.

use spatio_temporal_split_learning::split::{
    CheckpointRing, CutPoint, GuardConfig, SpatioTemporalTrainer, SplitConfig,
};

fn data(n: usize, seed: u64) -> spatio_temporal_split_learning::data::ImageDataset {
    spatio_temporal_split_learning::data::SyntheticCifar::new(seed)
        .difficulty(0.08)
        .generate_sized(n, 16)
}

fn cfg() -> SplitConfig {
    SplitConfig::tiny(CutPoint(1), 2).epochs(2).seed(13)
}

#[test]
fn restart_resumes_from_persisted_ring() {
    let train = data(48, 1);
    let test = data(16, 2);
    let dir = std::env::temp_dir().join("stsl_crash_resume_test");
    std::fs::remove_dir_all(&dir).ok();

    // "Process 1": train with the guard on, persist the ring, die.
    let mut first = SpatioTemporalTrainer::new(cfg(), &train)
        .unwrap()
        .with_integrity_guard(GuardConfig::default());
    first.train(&test);
    let final_accuracy = first.evaluate(&test);
    let ring = first.checkpoint_ring().clone();
    // Initial snapshot + one per epoch.
    assert_eq!(ring.len(), 3);
    ring.save_dir(&dir).unwrap();

    // "Process 2": fresh deployment (same config, same data partition),
    // different random state until the ring restores it.
    let mut second = SpatioTemporalTrainer::new(cfg().seed(99), &train)
        .unwrap()
        .with_integrity_guard(GuardConfig::default());
    assert_ne!(second.evaluate(&test), final_accuracy);
    let loaded = CheckpointRing::load_dir(&dir, GuardConfig::default().ring_capacity);
    assert_eq!(loaded.len(), 3);
    assert!(second.resume_from_ring(loaded).unwrap());
    assert_eq!(second.evaluate(&test), final_accuracy);

    // "Process 3": the crash truncated the newest ring file mid-write.
    // Restart lands on the newest *readable* snapshot (end of epoch 0),
    // and the traced loader surfaces exactly which file was lost instead
    // of silently shortening the ring.
    let newest = dir.join("ring-2.json");
    let json = std::fs::read_to_string(&newest).unwrap();
    std::fs::write(&newest, &json[..json.len() / 3]).unwrap();
    let load = CheckpointRing::load_dir_traced(&dir, GuardConfig::default().ring_capacity);
    assert_eq!(load.skipped.len(), 1);
    assert_eq!(load.skipped[0].kind(), std::io::ErrorKind::InvalidData);
    assert!(
        load.skipped[0].to_string().contains("ring-2.json"),
        "skip error should name the corrupt file: {}",
        load.skipped[0]
    );
    let degraded = load.ring;
    assert_eq!(degraded.len(), 2);
    let mut third = SpatioTemporalTrainer::new(cfg().seed(99), &train)
        .unwrap()
        .with_integrity_guard(GuardConfig::default());
    assert!(third.resume_from_ring(degraded).unwrap());
    let resumed_accuracy = third.evaluate(&test);

    // The resumed state is exactly the after-epoch-0 snapshot: replay
    // epoch 1 on it and training converges to the same final state the
    // first process reached.
    let mut replay = SpatioTemporalTrainer::new(cfg().seed(99), &train)
        .unwrap()
        .with_integrity_guard(GuardConfig::default());
    let mut reference = ring.clone();
    reference.pop_latest();
    assert!(replay.resume_from_ring(reference).unwrap());
    assert_eq!(replay.evaluate(&test), resumed_accuracy);
    third.run_epoch(1);
    replay.run_epoch(1);
    assert_eq!(third.evaluate(&test), replay.evaluate(&test));

    // An empty directory resumes nothing but is not an error.
    std::fs::remove_dir_all(&dir).ok();
    let mut fresh = SpatioTemporalTrainer::new(cfg(), &train).unwrap();
    let empty = CheckpointRing::load_dir(&dir, 4);
    assert!(!fresh.resume_from_ring(empty).unwrap());
}

#[test]
fn resume_rejects_mismatched_deployment() {
    let train = data(48, 3);
    let test = data(16, 4);
    let mut two = SpatioTemporalTrainer::new(cfg(), &train)
        .unwrap()
        .with_integrity_guard(GuardConfig::default());
    two.train(&test);
    let ring = two.checkpoint_ring().clone();

    let three_cfg = SplitConfig::tiny(CutPoint(1), 3).epochs(1).seed(13);
    let mut three = SpatioTemporalTrainer::new(three_cfg, &train).unwrap();
    assert!(three.resume_from_ring(ring).is_err());
}
