//! End-to-end integration of the full stack: data → partition → split
//! training → evaluation → reports, across trainer variants.

use spatio_temporal_split_learning::data::{Partition, SyntheticCifar};
use spatio_temporal_split_learning::split::{
    baselines::{vanilla_split, CentralizedTrainer, FedAvgTrainer},
    CnnArch, CutPoint, PartitionKind, SpatioTemporalTrainer, SplitConfig,
};

fn train_data(n: usize) -> spatio_temporal_split_learning::data::ImageDataset {
    SyntheticCifar::new(100)
        .difficulty(0.08)
        .generate_sized(n, 16)
}

fn test_data(n: usize) -> spatio_temporal_split_learning::data::ImageDataset {
    SyntheticCifar::new(200)
        .difficulty(0.08)
        .generate_sized(n, 16)
}

#[test]
fn every_cut_depth_trains_without_error() {
    let train = train_data(80);
    let test = test_data(20);
    for cut in 0..=3 {
        let cfg = SplitConfig::tiny(CutPoint(cut), 2)
            .epochs(1)
            .seed(cut as u64);
        let mut t = SpatioTemporalTrainer::new(cfg, &train).expect("valid config");
        let report = t.train(&test);
        assert_eq!(report.cut_blocks, cut);
        assert_eq!(report.epochs.len(), 1);
        assert!(report.final_accuracy >= 0.0 && report.final_accuracy <= 1.0);
        assert!(report.comm.uplink_messages > 0);
    }
}

#[test]
fn all_partition_schemes_work_end_to_end() {
    let train = train_data(120);
    let test = test_data(20);
    for partition in [
        PartitionKind::Iid,
        PartitionKind::Dirichlet { alpha: 0.5 },
        PartitionKind::Shards {
            shards_per_client: 2,
        },
    ] {
        let cfg = SplitConfig::tiny(CutPoint(1), 3)
            .epochs(1)
            .partition(partition)
            .seed(8);
        let mut t = SpatioTemporalTrainer::new(cfg, &train).expect("valid config");
        let report = t.train(&test);
        assert_eq!(report.per_client_accuracy.len(), 3);
    }
}

#[test]
fn augmentation_path_trains() {
    let train = train_data(60);
    let test = test_data(20);
    let cfg = SplitConfig::tiny(CutPoint(1), 2)
        .epochs(1)
        .augment(true)
        .seed(3);
    let mut t = SpatioTemporalTrainer::new(cfg, &train).expect("valid config");
    let report = t.train(&test);
    assert!(report.epochs[0].train_loss.is_finite());
}

#[test]
fn adam_optimizer_path_trains() {
    use spatio_temporal_split_learning::split::OptimizerKind;
    let train = train_data(60);
    let test = test_data(20);
    let cfg = SplitConfig::tiny(CutPoint(1), 2)
        .epochs(1)
        .optimizer(OptimizerKind::Adam)
        .learning_rate(0.001)
        .seed(4);
    let mut t = SpatioTemporalTrainer::new(cfg, &train).expect("valid config");
    let report = t.train(&test);
    assert!(report.epochs[0].train_loss.is_finite());
}

#[test]
fn vanilla_split_equals_spatio_temporal_with_one_client() {
    let train = train_data(60);
    let test = test_data(20);
    let cfg = SplitConfig::tiny(CutPoint(2), 5).epochs(1).seed(12);
    let mut a = vanilla_split(cfg.clone(), &train).expect("valid config");
    let mut cfg_one = cfg;
    cfg_one.end_systems = 1;
    let mut b = SpatioTemporalTrainer::new(cfg_one, &train).expect("valid config");
    let ra = a.train(&test);
    let rb = b.train(&test);
    assert_eq!(ra.final_accuracy, rb.final_accuracy);
    assert_eq!(ra.comm, rb.comm);
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let train = train_data(90);
        let test = test_data(30);
        let cfg = SplitConfig::tiny(CutPoint(1), 3).epochs(2).seed(77);
        let mut t = SpatioTemporalTrainer::new(cfg, &train).expect("valid config");
        let r = t.train(&test);
        (
            r.final_accuracy,
            r.epochs.iter().map(|e| e.train_loss).collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn baselines_run_on_the_same_data() {
    let train = train_data(80);
    let test = test_data(20);
    let cfg = SplitConfig::tiny(CutPoint(0), 2).epochs(1).seed(5);
    let mut central = CentralizedTrainer::new(cfg.clone()).expect("valid config");
    let rc = central.train(&train, &test);
    assert_eq!(rc.end_systems, 1);
    let mut fed = FedAvgTrainer::new(cfg, &train, 1).expect("valid config");
    let rf = fed.train(1, &test);
    assert!(
        rf.comm.total_bytes() > 0,
        "fedavg must pay model-transfer bytes"
    );
    assert_eq!(
        rc.comm.total_bytes(),
        0,
        "centralized pays no training-loop bytes"
    );
}

#[test]
fn partition_respects_client_count_in_trainer() {
    let train = train_data(100);
    let shards = Partition::Iid.split(&train, 5, 0);
    let total: usize = shards.iter().map(|s| s.len()).sum();
    assert_eq!(total, train.len());
    let cfg = SplitConfig::tiny(CutPoint(1), 5).epochs(1);
    let mut t = SpatioTemporalTrainer::new(cfg, &train).expect("valid config");
    t.run_epoch(0);
    assert_eq!(t.server_mut().served_per_client().len(), 5);
    assert!(t.server_mut().served_per_client().iter().all(|&c| c > 0));
}

#[test]
fn paper_arch_one_batch_smoke() {
    // One real-sized batch through the full Fig. 3 CNN at cut 1.
    let train = SyntheticCifar::new(50)
        .difficulty(0.1)
        .generate_sized(32, 32);
    let cfg = SplitConfig::new(CutPoint(1), 1)
        .arch(CnnArch::paper())
        .epochs(1)
        .batch_size(32);
    let mut t = SpatioTemporalTrainer::new(cfg, &train).expect("valid config");
    let (loss, _) = t.run_epoch(0);
    assert!(loss.is_finite() && loss > 0.0);
}
