//! Integration tests for the extension features: U-shaped label-private
//! protocol, noise defense, partial participation, checkpointing, and
//! gradient clipping across the full stack.

use spatio_temporal_split_learning::data::SyntheticCifar;
use spatio_temporal_split_learning::nn::clip::clip_grad_norm;
use spatio_temporal_split_learning::nn::loss::{Loss, SoftmaxCrossEntropy};
use spatio_temporal_split_learning::nn::summary::{render, summarize};
use spatio_temporal_split_learning::nn::Mode;
use spatio_temporal_split_learning::privacy::measure_leakage;
use spatio_temporal_split_learning::split::{
    CnnArch, CutPoint, SpatioTemporalTrainer, SplitConfig, UShapedTrainer,
};

fn data(n: usize, seed: u64) -> spatio_temporal_split_learning::data::ImageDataset {
    SyntheticCifar::new(seed)
        .difficulty(0.08)
        .generate_sized(n, 16)
}

#[test]
fn ushaped_and_standard_protocols_reach_similar_accuracy() {
    let train = data(160, 1);
    let test = data(40, 2);
    let cfg = || {
        SplitConfig::tiny(CutPoint(1), 2)
            .epochs(3)
            .seed(3)
            .learning_rate(0.01)
    };
    let std_acc = SpatioTemporalTrainer::new(cfg(), &train)
        .unwrap()
        .train(&test)
        .final_accuracy;
    let u_acc = UShapedTrainer::new(cfg(), &train)
        .unwrap()
        .train(&test)
        .final_accuracy;
    // Same architecture, same data: neither protocol should be wildly
    // better. Allow generous slack — both are short runs.
    assert!(
        (std_acc - u_acc).abs() < 0.35,
        "protocols diverged: standard {:.3} vs u-shaped {:.3}",
        std_acc,
        u_acc
    );
}

#[test]
fn ushaped_sends_no_labels_but_more_messages() {
    let train = data(64, 4);
    let test = data(16, 5);
    let cfg = || {
        SplitConfig::tiny(CutPoint(1), 1)
            .epochs(1)
            .batch_size(16)
            .seed(6)
    };
    let mut std_t = SpatioTemporalTrainer::new(cfg(), &train).unwrap();
    let rs = std_t.train(&test);
    let mut u_t = UShapedTrainer::new(cfg(), &train).unwrap();
    let ru = u_t.train(&test);
    assert_eq!(
        ru.comm.uplink_messages + ru.comm.downlink_messages,
        2 * (rs.comm.uplink_messages + rs.comm.downlink_messages),
        "u-shaped must double the round trips"
    );
}

#[test]
fn noise_defense_reduces_leakage_and_costs_accuracy() {
    let train = data(160, 7);
    let test = data(40, 8);
    let aux = data(600, 9);
    let victims = data(24, 10);
    let run = |sigma: f32| {
        let cfg = SplitConfig::tiny(CutPoint(1), 1)
            .epochs(2)
            .seed(11)
            .smash_noise(sigma);
        let mut t = SpatioTemporalTrainer::new(cfg, &train).unwrap();
        let report = t.train(&test);
        let client = t.clients_mut().first_mut().unwrap();
        let leak = measure_leakage(|x| client.encode_protected(x), &aux, &victims, 8, 0);
        (report.final_accuracy, leak)
    };
    let (_acc_clean, leak_clean) = run(0.0);
    let (_acc_noisy, leak_noisy) = run(3.0);
    assert!(
        leak_noisy.dcor < leak_clean.dcor,
        "noise must reduce input dependence: {:.3} vs {:.3}",
        leak_noisy.dcor,
        leak_clean.dcor
    );
    assert!(
        leak_noisy.psnr_db < leak_clean.psnr_db,
        "noise must reduce reconstruction fidelity: {:.2} vs {:.2}",
        leak_noisy.psnr_db,
        leak_clean.psnr_db
    );
}

#[test]
fn partial_participation_trains_fewer_batches_but_still_learns() {
    let train = data(120, 12);
    let test = data(30, 13);
    let cfg = SplitConfig::tiny(CutPoint(1), 3)
        .epochs(4)
        .participation(0.6)
        .seed(14)
        .learning_rate(0.01);
    let mut t = SpatioTemporalTrainer::new(cfg, &train).unwrap();
    let report = t.train(&test);
    let served: u64 = t.server_mut().served_per_client().iter().sum();
    // Full participation would serve 3 clients × ceil(40/16)=3 batches × 4
    // epochs = 36 batches.
    assert!(
        served < 36,
        "some epochs must be skipped, served {}",
        served
    );
    assert!(report.final_accuracy > 0.05);
}

#[test]
fn checkpoint_through_public_api_roundtrips_via_disk() {
    let train = data(48, 15);
    let test = data(16, 16);
    let cfg = SplitConfig::tiny(CutPoint(2), 2).epochs(1).seed(17);
    let mut t = SpatioTemporalTrainer::new(cfg.clone(), &train).unwrap();
    t.train(&test);
    let before = t.evaluate(&test);
    let ckpt = t.checkpoint();
    let path = std::env::temp_dir().join("stsl_ext_ckpt.json");
    ckpt.save(&path).unwrap();
    let loaded = spatio_temporal_split_learning::split::Checkpoint::load(&path).unwrap();
    let mut fresh = SpatioTemporalTrainer::new(cfg, &train).unwrap();
    fresh.restore(&loaded).unwrap();
    assert_eq!(fresh.evaluate(&test), before);
    std::fs::remove_file(&path).ok();
}

#[test]
fn gradient_clipping_integrates_with_cnn_training() {
    let mut net = CnnArch::tiny().build(18);
    let train = data(16, 19);
    let (x, y) = train.batch(&(0..16).collect::<Vec<_>>());
    net.zero_grads();
    let logits = net.forward(&x, Mode::Train);
    let out = SoftmaxCrossEntropy::new().forward(&logits, &y);
    net.backward(&out.grad);
    let pre = clip_grad_norm(&mut net, 0.1);
    assert!(pre > 0.0);
    assert!(net.grad_sq_norm().sqrt() <= 0.1 + 1e-4);
}

#[test]
fn model_summary_covers_the_paper_cnn() {
    let mut net = CnnArch::paper().build(0);
    let rows = summarize(&mut net, &[1, 3, 32, 32]);
    assert_eq!(rows.len(), 3 * 5 + 4);
    // Last conv block outputs 256×1×1 before flatten.
    let pool5 = &rows[14];
    assert_eq!(pool5.output_dims, vec![1, 256, 1, 1]);
    let text = render(&rows);
    assert!(text.contains("conv2d"));
    assert!(text.contains("total"));
}
