//! Chaos integration test: the asynchronous trainer under a fault plan
//! combining client crashes, a loss surge, a latency spike, a link outage
//! and a server stall — on top of a 10 % lossy link.
//!
//! The run must complete without panicking, keep its robustness counters
//! consistent, recover the crashed client from an auto-checkpoint, and be
//! bit-identical across runs with the same seed.

use spatio_temporal_split_learning::data::SyntheticCifar;
use spatio_temporal_split_learning::simnet::{
    EndSystemId, FaultPlan, Link, SimDuration, SimTime, StarTopology, TraceKind,
};
use spatio_temporal_split_learning::split::{
    AsyncReport, AsyncSplitTrainer, ComputeModel, CutPoint, RetryPolicy, SchedulingPolicy,
    SplitConfig,
};

fn data(n: usize, seed: u64) -> spatio_temporal_split_learning::data::ImageDataset {
    SyntheticCifar::new(seed)
        .difficulty(0.08)
        .generate_sized(n, 16)
}

fn ms(x: u64) -> SimTime {
    SimTime::from_millis(x)
}

/// Three clients, client 0 on a 10 % lossy link, and a plan with every
/// fault kind. Returns the report plus the trace CSV.
fn chaos_run(seed: u64) -> (AsyncReport, String) {
    let train = data(144, 1);
    let test = data(24, 2);
    let topology = StarTopology::new(vec![
        Link::wan(5.0, 100.0).loss(0.10),
        Link::wan(20.0, 100.0),
        Link::wan(40.0, 100.0),
    ]);
    let plan = FaultPlan::new()
        .client_crash(EndSystemId(1), ms(60), ms(400))
        .loss_surge(EndSystemId(2), 0.4, ms(0), ms(300))
        .latency_spike(EndSystemId(0), 50.0, 20.0, ms(100), ms(500))
        .link_outage(EndSystemId(2), ms(500), ms(600))
        .server_stall(ms(200), ms(280));
    let cfg = SplitConfig::tiny(CutPoint(1), 3)
        .epochs(3)
        .batch_size(16)
        .seed(seed);
    let mut t = AsyncSplitTrainer::new(
        cfg,
        &train,
        topology,
        SchedulingPolicy::Fifo,
        ComputeModel::default(),
    )
    .expect("valid config")
    .with_fault_plan(plan)
    .with_retry_policy(RetryPolicy::default())
    .with_auto_checkpoint(SimDuration::from_millis(50))
    .with_liveness_timeout(SimDuration::from_millis(200));
    t.enable_trace();
    let report = t.run(&test);
    assert!(t.last_checkpoint().is_some(), "auto-checkpoints were taken");
    let csv = t.trace().expect("trace enabled").to_csv();
    let trace = t.trace().unwrap();
    // Crash recovery went through the checkpoint-restore path.
    assert_eq!(trace.count(TraceKind::ClientCrash), 1);
    assert_eq!(trace.count(TraceKind::ClientRecover), 1);
    assert_eq!(trace.count(TraceKind::CheckpointRestore), 1);
    assert!(trace.count(TraceKind::CheckpointSave) > 0);
    assert_eq!(
        trace.count(TraceKind::Retransmit) as u64,
        report.retransmits
    );
    assert_eq!(
        trace.count(TraceKind::NetworkDrop) as u64,
        report.network_drops
    );
    (report, csv)
}

#[test]
fn chaos_run_completes_with_consistent_counters() {
    let (r, _) = chaos_run(11);
    // The network was genuinely hostile...
    assert!(r.network_drops > 0, "expected losses: {:?}", r);
    assert!(r.retransmits > 0, "expected retransmissions: {:?}", r);
    // ...every drop was either retried or gave up its batch...
    assert_eq!(r.retransmits + r.retry_exhausted, r.network_drops);
    // ...the crash happened and recovered via checkpoint restore...
    assert_eq!(r.crash_events, 1);
    assert_eq!(r.recovery_events, 1);
    assert_eq!(r.checkpoint_restores, 1);
    assert!(r.checkpoint_saves > 0);
    assert!(
        (r.downtime_ms_per_client[1] - 340.0).abs() < 1.0,
        "crash window is 60..400 ms: {:?}",
        r.downtime_ms_per_client
    );
    // ...lost work is bounded and accounted per client...
    assert_eq!(
        r.batches_lost,
        r.batches_lost_per_client.iter().sum::<u64>()
    );
    // ...and every client still made progress through all three epochs
    // (9 batches each minus what was genuinely lost).
    let expected: u64 = 9 * 3 - r.batches_lost - r.scheduler_drops;
    assert_eq!(r.served_per_client.iter().sum::<u64>(), expected);
    for (i, &served) in r.served_per_client.iter().enumerate() {
        assert!(
            served > 0,
            "client {} starved: {:?}",
            i,
            r.served_per_client
        );
    }
    assert!(r.final_accuracy > 0.0);
}

#[test]
fn chaos_run_is_bit_identical_across_identical_seeds() {
    let (a, csv_a) = chaos_run(11);
    let (b, csv_b) = chaos_run(11);
    assert_eq!(csv_a, csv_b, "identical seeds must reproduce the trace");
    assert_eq!(a.sim_seconds, b.sim_seconds);
    assert_eq!(a.served_per_client, b.served_per_client);
    assert_eq!(a.retransmits, b.retransmits);
    assert_eq!(a.batches_lost_per_client, b.batches_lost_per_client);
    assert_eq!(a.downtime_ms_per_client, b.downtime_ms_per_client);
    assert_eq!(a.final_accuracy, b.final_accuracy);
    assert_eq!(a.comm, b.comm);
}

#[test]
fn different_seeds_change_the_fault_free_details_but_not_safety() {
    let (a, csv_a) = chaos_run(11);
    let (b, csv_b) = chaos_run(12);
    assert_ne!(csv_a, csv_b, "different seeds should differ somewhere");
    for r in [&a, &b] {
        assert_eq!(r.retransmits + r.retry_exhausted, r.network_drops);
        assert_eq!(r.crash_events, r.recovery_events);
    }
}
