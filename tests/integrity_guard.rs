//! Integration tests for the data-plane integrity guard: checksummed
//! frames under injected payload corruption, silent poisoning of the
//! unguarded receiver, quarantine of a poisonous end-system, and the
//! divergence-rollback watchdog.

use spatio_temporal_split_learning::simnet::{
    FaultPlan, Link, SimDuration, SimTime, StarTopology, TraceKind,
};
use spatio_temporal_split_learning::split::{
    AsyncReport, AsyncSplitTrainer, ComputeModel, CutPoint, GuardConfig, RetryPolicy,
    SchedulingPolicy, SpatioTemporalTrainer, SplitConfig,
};

fn data(n: usize, seed: u64) -> spatio_temporal_split_learning::data::ImageDataset {
    spatio_temporal_split_learning::data::SyntheticCifar::new(seed)
        .difficulty(0.08)
        .generate_sized(n, 16)
}

/// A corruption plan covering the whole run on every link.
fn corruption_everywhere(clients: usize, rate: f64) -> FaultPlan {
    FaultPlan::new().payload_corruption_all(
        clients,
        rate,
        SimTime::ZERO,
        SimTime::from_micros(u64::MAX),
    )
}

fn build(
    clients: usize,
    epochs: usize,
    plan: FaultPlan,
    guard: bool,
    train: &spatio_temporal_split_learning::data::ImageDataset,
) -> AsyncSplitTrainer {
    let cfg = SplitConfig::tiny(CutPoint(1), clients)
        .epochs(epochs)
        .batch_size(8)
        .seed(21);
    let top = StarTopology::uniform(clients, Link::wan(5.0, 100.0));
    let mut t = AsyncSplitTrainer::new(
        cfg,
        train,
        top,
        SchedulingPolicy::Fifo,
        ComputeModel::default(),
    )
    .unwrap()
    .with_fault_plan(plan)
    .with_retry_policy(RetryPolicy::default())
    .with_auto_checkpoint(SimDuration::from_millis(100));
    if guard {
        t = t.with_integrity_guard(GuardConfig::default());
    }
    t
}

#[test]
fn guard_detects_all_corruption_and_loses_nothing() {
    let train = data(48, 5);
    let test = data(16, 6);
    let mut t = build(2, 2, corruption_everywhere(2, 0.25), true, &train);
    t.enable_trace();
    let r = t.run(&test);
    assert!(r.corrupted_payloads > 0, "corruption never fired: {r:?}");
    // Every garbled frame was caught (CRC) and none slipped through.
    assert_eq!(r.corrupted_rejected, r.corrupted_payloads);
    // Retransmission recovered every one: the full workload was served.
    assert_eq!(r.served_per_client, vec![6, 6]);
    assert_eq!(r.batches_lost, 0);
    // Rejections feed the same retry discipline as network drops.
    assert_eq!(
        r.retransmits + r.retry_exhausted,
        r.network_drops + r.corrupted_rejected
    );
    let trace = t.trace().unwrap();
    assert_eq!(
        trace.count(TraceKind::PayloadCorrupted) as u64,
        r.corrupted_payloads
    );
    assert_eq!(
        trace.count(TraceKind::CorruptRejected) as u64,
        r.corrupted_rejected
    );
}

#[test]
fn unguarded_receiver_accepts_silent_poison() {
    let train = data(48, 5);
    let test = data(16, 6);
    let guarded = build(2, 2, corruption_everywhere(2, 0.25), true, &train).run(&test);
    let unguarded = build(2, 2, corruption_everywhere(2, 0.25), false, &train).run(&test);
    // Without the CRC, only structurally unusable frames are caught; the
    // rest are silently applied.
    assert!(
        unguarded.corrupted_rejected < unguarded.corrupted_payloads,
        "legacy receiver should miss some corruption: {unguarded:?}"
    );
    assert_eq!(guarded.corrupted_rejected, guarded.corrupted_payloads);
    // The silently poisoned run trains a worse (or at best equal) model.
    assert!(
        guarded.final_accuracy >= unguarded.final_accuracy,
        "guard {} vs poisoned {}",
        guarded.final_accuracy,
        unguarded.final_accuracy
    );
}

#[test]
fn corruption_free_runs_identical_with_and_without_guard() {
    // With no corruption episodes the guard must be a pure pass-through:
    // same RNG streams, same event schedule, same trained model.
    let train = data(48, 5);
    let test = data(16, 6);
    let on = build(2, 1, FaultPlan::new(), true, &train).run(&test);
    let off = build(2, 1, FaultPlan::new(), false, &train).run(&test);
    assert_eq!(on.final_accuracy, off.final_accuracy);
    assert_eq!(on.sim_seconds, off.sim_seconds);
    assert_eq!(on.served_per_client, off.served_per_client);
    assert_eq!(on.corrupted_payloads, 0);
}

#[test]
fn poisonous_client_is_rejected_then_quarantined() {
    let train = data(48, 5);
    let test = data(16, 6);
    let mut t = build(2, 3, FaultPlan::new(), true, &train);
    // Client 0's private model is wrecked with huge weights (NaN would be
    // squashed to zero by ReLU): every activation it sends norm-explodes.
    // The wire is clean, so only ingress validation can stop the poison.
    let poisoned: Vec<_> = t.clients_mut()[0]
        .model_mut()
        .state_dict()
        .into_iter()
        .map(|mut p| {
            p.map_inplace(|_| 1e20);
            p
        })
        .collect();
    t.clients_mut()[0].model_mut().load_state_dict(&poisoned);
    t.enable_trace();
    let r = t.run(&test);
    assert!(
        r.anomalies_rejected >= 3,
        "ingress should reject repeatedly: {r:?}"
    );
    assert!(
        r.quarantines >= 1,
        "repeat offender never quarantined: {r:?}"
    );
    assert!(r.quarantine_drops > 0, "quarantine never dropped: {r:?}");
    // Every batch of the poisoned client that reached the server was
    // rejected at ingress (the queue counts a batch as served when it is
    // popped, before validation), and quarantine kept the rest out.
    assert_eq!(r.anomalies_rejected, r.served_per_client[0]);
    assert_eq!(
        r.served_per_client[0] + r.quarantine_drops,
        9,
        "all 9 poisoned batches were rejected or quarantine-dropped: {r:?}"
    );
    // …and the healthy client trained unimpeded (3 epochs x 3 batches).
    assert_eq!(r.served_per_client[1], 9);
    let trace = t.trace().unwrap();
    assert!(trace.count(TraceKind::AnomalyRejected) >= 3);
    assert!(trace.count(TraceKind::Quarantine) >= 1);
}

#[test]
fn watchdog_rolls_back_divergent_training() {
    let train = data(48, 5);
    let test = data(16, 6);
    // An absurd learning rate blows training up within a few steps; the
    // watchdog must roll back to a pre-divergence snapshot and cool the
    // rate instead of shipping NaN gradients to every end-system.
    let cfg = SplitConfig::tiny(CutPoint(1), 2)
        .epochs(3)
        .batch_size(8)
        .learning_rate(50.0)
        .seed(21);
    let top = StarTopology::uniform(2, Link::wan(5.0, 100.0));
    let mut t = AsyncSplitTrainer::new(
        cfg,
        &train,
        top,
        SchedulingPolicy::Fifo,
        ComputeModel::default(),
    )
    .unwrap()
    .with_auto_checkpoint(SimDuration::from_millis(50))
    .with_integrity_guard(GuardConfig {
        warmup_steps: 2,
        ..GuardConfig::default()
    });
    t.enable_trace();
    let r = t.run(&test);
    assert!(r.rollbacks >= 1, "divergence never rolled back: {r:?}");
    assert!(t.trace().unwrap().count(TraceKind::Rollback) >= 1);
}

#[test]
fn sync_trainer_guard_rejects_poison_and_reports_it() {
    let train = data(48, 5);
    let test = data(16, 6);
    let cfg = SplitConfig::tiny(CutPoint(1), 2).epochs(2).seed(9);
    let mut t = SpatioTemporalTrainer::new(cfg, &train)
        .unwrap()
        .with_integrity_guard(GuardConfig::default());
    let poisoned: Vec<_> = t.clients_mut()[0]
        .model_mut()
        .state_dict()
        .into_iter()
        .map(|mut p| {
            p.map_inplace(|_| f32::INFINITY);
            p
        })
        .collect();
    t.clients_mut()[0].model_mut().load_state_dict(&poisoned);
    let report = t.train(&test);
    assert!(report.anomalies_rejected > 0, "{report:?}");
    assert_eq!(
        report
            .epochs
            .iter()
            .map(|e| e.anomalies_rejected)
            .sum::<u64>(),
        report.anomalies_rejected
    );
    // The ring banked a checkpoint per epoch plus the initial snapshot.
    assert!(!t.checkpoint_ring().is_empty());
}

#[test]
fn guarded_corrupted_runs_are_seed_deterministic() {
    let mk = || {
        let train = data(48, 5);
        let test = data(16, 6);
        let mut t = build(2, 2, corruption_everywhere(2, 0.3), true, &train);
        t.enable_trace();
        let r = t.run(&test);
        let csv = t.trace().unwrap().to_csv();
        (r, csv)
    };
    let (a, csv_a): (AsyncReport, String) = mk();
    let (b, csv_b) = mk();
    assert_eq!(csv_a, csv_b, "identical seeds must reproduce the trace");
    assert_eq!(a.corrupted_payloads, b.corrupted_payloads);
    assert_eq!(a.final_accuracy, b.final_accuracy);
    assert_eq!(a.sim_seconds, b.sim_seconds);
}
