//! Kernel conformance: the blocked backend vs the scalar reference oracle.
//!
//! `stsl-tensor` ships two numeric backends behind [`Backend`]: the scalar
//! **reference** path (the historical kernels, unchanged summation order)
//! and the cache-**blocked** packed path. This suite proves, over
//! proptest-randomized shapes — odd, tall, skinny, unit dims and `k = 0` —
//! that the blocked backend is numerically conformant:
//!
//! * **Exact equality** wherever the blocked path preserves the reference
//!   accumulation order or the op is order-insensitive: `sum_axis`, `mean`,
//!   `max` / `min` / `argmax`, the softmax row maxima, and `k = 0` GEMM.
//! * **Asserted forward-error bounds** wherever blocking reorders
//!   accumulation. The bounds are *computed*, not hand-waved: each test
//!   derives the classic summation-error envelope and asserts the observed
//!   difference stays inside it element by element.
//!
//! ## The GEMM bound
//!
//! For one output element, both backends sum the same `k` products (plus
//! `alpha` scaling and the `c0` accumulate) in some order. Rounding each
//! partial sum of magnitude ≤ S = |alpha|·Σ|a_ik·b_kj| + |c0| loses at most
//! `eps·S`, and an order needs at most `k + 2` partials, so either backend
//! sits within `(k + 2)·eps·S` of the exact value and the two differ by at
//! most **`2·(k + 2)·eps·S`**. `S` itself is computed with the reference
//! GEMM on |A|, |B|; a 2× margin absorbs the rounding of `S`.
//!
//! ## The softmax bounds
//!
//! Both backends subtract the *bitwise identical* row max and call the same
//! `exp`; only the denominator sum (and, for `log_softmax`, the `ln` of it)
//! reorders. A `c`-term sum of positives in (0, 1] carries relative error
//! ≤ `c·eps` per backend, so softmax outputs (ref · denominator error)
//! differ by ≤ `4·c·eps·|ref|` and `log_softmax` (through `ln`, which turns
//! relative error of the argument into absolute error) by
//! ≤ `8·c·eps·max(1, |ref|)` — both with a tiny absolute floor for
//! subnormal outputs.

use proptest::prelude::*;
use spatio_temporal_split_learning::tensor::init::rng_from_seed;
use spatio_temporal_split_learning::tensor::ops::matmul::{gemm, gemm_a_bt, gemm_at_b, gemm_into};
use spatio_temporal_split_learning::tensor::{with_backend, Backend, Tensor};

const EPS: f32 = f32::EPSILON;
/// Absolute floor so bounds stay meaningful when the reference value
/// underflows to subnormals or exact zero.
const FLOOR: f32 = 1e-30;

fn reference<R>(f: impl FnOnce() -> R) -> R {
    with_backend(Backend::Reference, f)
}

fn blocked<R>(f: impl FnOnce() -> R) -> R {
    with_backend(Backend::Blocked, f)
}

/// Asserts `|got - want| ≤ bound(i)` element-wise, reporting the worst
/// offender with its index and bound on failure.
fn assert_within(
    label: &str,
    got: &[f32],
    want: &[f32],
    bound: impl Fn(usize) -> f32,
) -> Result<(), TestCaseError> {
    prop_assert!(got.len() == want.len(), "{}: length mismatch", label);
    for i in 0..got.len() {
        let diff = (got[i] - want[i]).abs();
        let b = bound(i);
        prop_assert!(
            diff <= b,
            "{}: element {} diverged: got {}, want {}, |diff| {} > bound {}",
            label,
            i,
            got[i],
            want[i],
            diff,
            b
        );
    }
    Ok(())
}

/// Forward-error envelope for one GEMM element (see module docs):
/// `2 (k + 2) eps (|alpha| absdot + |c0|)`.
fn gemm_bound(k: usize, alpha: f32, absdot: f32, c0: f32) -> f32 {
    2.0 * (k as f32 + 2.0) * EPS * (alpha.abs() * absdot + c0.abs()) + FLOOR
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Blocked GEMM (`C += alpha·A·B`) stays inside the summation-error
    /// envelope of the reference kernel on random shapes, including unit
    /// dims and `k = 0`.
    #[test]
    fn gemm_blocked_within_forward_error_of_reference(
        m in 1usize..48, k in 0usize..80, n in 1usize..48,
        alpha in -2.0f32..2.0, seed in 0u64..1_000
    ) {
        let mut rng = rng_from_seed(seed);
        let a = Tensor::randn([m, k.max(1)], &mut rng).as_slice()[..m * k].to_vec();
        let b = Tensor::randn([k.max(1), n], &mut rng).as_slice()[..k * n].to_vec();
        let c0 = Tensor::randn([m, n], &mut rng).as_slice().to_vec();

        let mut want = c0.clone();
        reference(|| gemm_into(&a, &b, &mut want, m, k, n, alpha));
        let mut got = c0.clone();
        blocked(|| gemm_into(&a, &b, &mut got, m, k, n, alpha));

        let abs_a: Vec<f32> = a.iter().map(|x| x.abs()).collect();
        let abs_b: Vec<f32> = b.iter().map(|x| x.abs()).collect();
        let absdot = reference(|| gemm(&abs_a, &abs_b, m, k, n));
        assert_within("gemm_into", &got, &want, |i| {
            gemm_bound(k, alpha, absdot[i], c0[i])
        })?;

        if k == 0 {
            // No terms to reorder: both backends must leave C bitwise at c0
            // (alpha · empty sum adds exactly nothing).
            prop_assert!(got == c0, "k = 0 must not touch C");
            prop_assert!(want == c0, "k = 0 must not touch C (reference)");
        }
    }

    /// The transposed entry points (`AᵀB`, `ABᵀ`) obey the same envelope —
    /// they share the microkernel, only the packing differs.
    #[test]
    fn transposed_gemm_variants_within_forward_error(
        m in 1usize..40, k in 1usize..64, n in 1usize..40, seed in 0u64..1_000
    ) {
        let mut rng = rng_from_seed(seed ^ 0x5a5a);
        let at = Tensor::randn([k, m], &mut rng).as_slice().to_vec();
        let b = Tensor::randn([k, n], &mut rng).as_slice().to_vec();
        let a = Tensor::randn([m, k], &mut rng).as_slice().to_vec();
        let bt = Tensor::randn([n, k], &mut rng).as_slice().to_vec();

        let abs = |v: &[f32]| v.iter().map(|x| x.abs()).collect::<Vec<f32>>();

        let want = reference(|| gemm_at_b(&at, &b, m, k, n));
        let got = blocked(|| gemm_at_b(&at, &b, m, k, n));
        let absdot = reference(|| gemm_at_b(&abs(&at), &abs(&b), m, k, n));
        assert_within("gemm_at_b", &got, &want, |i| gemm_bound(k, 1.0, absdot[i], 0.0))?;

        let want = reference(|| gemm_a_bt(&a, &bt, m, k, n));
        let got = blocked(|| gemm_a_bt(&a, &bt, m, k, n));
        let absdot = reference(|| gemm_a_bt(&abs(&a), &abs(&bt), m, k, n));
        assert_within("gemm_a_bt", &got, &want, |i| gemm_bound(k, 1.0, absdot[i], 0.0))?;
    }

    /// Softmax / log-softmax rows: max subtraction and `exp` are shared, so
    /// only the denominator reorders — outputs stay inside the `c·eps`
    /// relative envelope derived in the module docs.
    #[test]
    fn softmax_family_within_denominator_error(
        r in 1usize..24, c in 1usize..96, seed in 0u64..1_000, scale in 0.5f32..8.0
    ) {
        let mut rng = rng_from_seed(seed ^ 0xf00d);
        let mut x = Tensor::randn([r, c], &mut rng);
        x.scale_inplace(scale);

        let want = reference(|| x.softmax_rows());
        let got = blocked(|| x.softmax_rows());
        assert_within("softmax_rows", got.as_slice(), want.as_slice(), |i| {
            4.0 * c as f32 * EPS * want.as_slice()[i].abs() + FLOOR
        })?;
        // Each blocked row still sums to 1 within its own envelope.
        for row in 0..r {
            let s: f32 = got.as_slice()[row * c..(row + 1) * c].iter().sum();
            prop_assert!(
                (s - 1.0).abs() <= 2.0 * c as f32 * EPS + FLOOR,
                "softmax row {} sums to {}",
                row,
                s
            );
        }

        let want = reference(|| x.log_softmax_rows());
        let got = blocked(|| x.log_softmax_rows());
        assert_within("log_softmax_rows", got.as_slice(), want.as_slice(), |i| {
            8.0 * c as f32 * EPS * want.as_slice()[i].abs().max(1.0)
        })?;
    }

    /// `Tensor::sum` reorders into fixed lanes/blocks on the blocked
    /// backend; the result stays inside the flat-sum error envelope.
    #[test]
    fn sum_within_forward_error(len in 0usize..10_000, seed in 0u64..1_000) {
        let mut rng = rng_from_seed(seed ^ 0xbeef);
        let x = Tensor::randn([len.max(1)], &mut rng);
        let x = Tensor::from_vec(x.as_slice()[..len].to_vec(), [len]);

        let want = reference(|| x.sum());
        let got = blocked(|| x.sum());
        let abs_sum: f32 = x.as_slice().iter().map(|v| v.abs()).sum();
        let bound = 2.0 * (len as f32 + 2.0) * EPS * abs_sum + FLOOR;
        prop_assert!(
            (got - want).abs() <= bound,
            "sum diverged: blocked {}, reference {}, bound {}",
            got,
            want,
            bound
        );
    }

    /// Order-insensitive ops share one code path: results must be
    /// **bitwise identical** across backends, not merely close.
    #[test]
    fn order_insensitive_ops_bitwise_equal_across_backends(
        r in 1usize..16, c in 1usize..32, seed in 0u64..1_000
    ) {
        let mut rng = rng_from_seed(seed ^ 0xcafe);
        let x = Tensor::randn([r, c], &mut rng);

        let want = reference(|| {
            (
                x.sum_axis(0),
                x.sum_axis(1),
                x.mean_axis(0),
                x.max().to_bits(),
                x.min().to_bits(),
                x.argmax(),
                x.argmax_rows(),
            )
        });
        let got = blocked(|| {
            (
                x.sum_axis(0),
                x.sum_axis(1),
                x.mean_axis(0),
                x.max().to_bits(),
                x.min().to_bits(),
                x.argmax(),
                x.argmax_rows(),
            )
        });
        prop_assert_eq!(got, want);
    }
}

/// Deterministic shapes that historically break blocked kernels: every
/// microtile/panel boundary (`MR = 4`, `NR = 8`, `KC = 256`, `MC = 64`)
/// hit exactly, one past, and from below, plus unit and empty dims.
#[test]
fn gemm_edge_shapes_within_forward_error() {
    let shapes: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (1, 0, 1),
        (5, 0, 7),
        (4, 8, 8),    // exact MR × NR microtile
        (5, 9, 9),    // one past the microtile in every dim
        (3, 7, 7),    // strictly inside a single microtile
        (64, 16, 8),  // exact MC row block
        (65, 16, 8),  // one past MC
        (4, 256, 8),  // exact KC panel
        (4, 257, 8),  // one past KC
        (4, 255, 8),  // one below KC
        (129, 1, 1),  // tall and skinny
        (1, 1, 129),  // wide and flat
        (1, 300, 1),  // pure dot product spanning two KC panels
        (67, 33, 41), // odd everything
    ];
    for &(m, k, n) in shapes {
        let mut rng = rng_from_seed(7 + (m * 31 + k * 7 + n) as u64);
        let a = Tensor::randn([m, k.max(1)], &mut rng).as_slice()[..m * k].to_vec();
        let b = Tensor::randn([k.max(1), n], &mut rng).as_slice()[..k * n].to_vec();

        let want = reference(|| gemm(&a, &b, m, k, n));
        let got = blocked(|| gemm(&a, &b, m, k, n));
        let abs_a: Vec<f32> = a.iter().map(|x| x.abs()).collect();
        let abs_b: Vec<f32> = b.iter().map(|x| x.abs()).collect();
        let absdot = reference(|| gemm(&abs_a, &abs_b, m, k, n));
        for i in 0..want.len() {
            let bound = 2.0 * (k as f32 + 2.0) * EPS * absdot[i] + FLOOR;
            assert!(
                (got[i] - want[i]).abs() <= bound,
                "({m},{k},{n}) element {i}: blocked {} vs reference {} exceeds bound {bound}",
                got[i],
                want[i]
            );
        }
    }
}

/// `STSL_BACKEND` is only consulted when no scope override is active, and
/// the two spellings of each backend parse identically.
#[test]
fn backend_scope_override_beats_ambient_default() {
    assert_eq!(Backend::parse("reference"), Some(Backend::Reference));
    assert_eq!(Backend::parse("scalar"), Some(Backend::Reference));
    assert_eq!(Backend::parse("blocked"), Some(Backend::Blocked));
    assert_eq!(Backend::parse("SIMD"), Some(Backend::Blocked));
    assert_eq!(Backend::parse("neon?"), None);
    reference(|| {
        assert_eq!(Backend::active(), Backend::Reference);
        blocked(|| assert_eq!(Backend::active(), Backend::Blocked));
        assert_eq!(Backend::active(), Backend::Reference);
    });
}
