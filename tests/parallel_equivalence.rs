//! Bitwise serial/parallel equivalence — the contract of `stsl-parallel`.
//!
//! Every parallel kernel in the workspace partitions its output into
//! contiguous disjoint slices and keeps the per-element accumulation order
//! identical to the serial loop, so results must be **bitwise identical**
//! for any thread count. These tests pin that contract at every layer:
//! raw GEMM kernels, the conv2d forward/backward pipeline, one full
//! synchronous training epoch, and a four-end-system asynchronous epoch
//! including the scheduler's event order.
//!
//! Since the backend seam landed, the contract is **per backend**: the
//! scalar reference path and the cache-blocked path produce different
//! (ULP-bounded, see `kernel_conformance`) numbers from each other, but
//! *within* each backend results must not depend on the thread count —
//! blocked-kernel band and tile boundaries never change any element's
//! accumulation order. Every test therefore runs the full
//! {reference, blocked} × {1, 2, 4} threads matrix.
//!
//! Thread counts are forced with [`parallel::with_threads`] and backends
//! with [`tensor::with_backend`]; both take precedence over the
//! `STSL_THREADS` / `STSL_BACKEND` environment variables, so the suite
//! proves the same thing no matter what CI sets them to.

use spatio_temporal_split_learning::data::SyntheticCifar;
use spatio_temporal_split_learning::parallel;
use spatio_temporal_split_learning::simnet::StarTopology;
use spatio_temporal_split_learning::split::{
    AsyncSplitTrainer, ComputeModel, CutPoint, SchedulingPolicy, SpatioTemporalTrainer, SplitConfig,
};
use spatio_temporal_split_learning::tensor::init::rng_from_seed;
use spatio_temporal_split_learning::tensor::ops::conv::{
    conv2d_backward, conv2d_forward, ConvSpec,
};
use spatio_temporal_split_learning::tensor::ops::matmul::{gemm, gemm_a_bt, gemm_at_b};
use spatio_temporal_split_learning::tensor::{with_backend, Backend, Tensor};

/// Both numeric backends; every test runs the full matrix against each.
const BACKENDS: [Backend; 2] = [Backend::Reference, Backend::Blocked];

/// Runs `f` once per thread count *under the given backend* and asserts
/// all results are bitwise equal to the single-threaded one.
fn assert_equal_across_threads_on<R: PartialEq + std::fmt::Debug>(
    backend: Backend,
    label: &str,
    mut f: impl FnMut() -> R,
) -> R {
    let serial = with_backend(backend, || parallel::with_threads(1, &mut f));
    for threads in [2, 4] {
        let parallel = with_backend(backend, || parallel::with_threads(threads, &mut f));
        assert_eq!(
            serial,
            parallel,
            "{label} [{}]: {threads}-thread result diverged from serial",
            backend.name()
        );
    }
    serial
}

/// Runs the {reference, blocked} × {1, 2, 4}-thread matrix and returns the
/// per-backend single-threaded results (which are *allowed* to differ
/// between backends — that difference is bounded by `kernel_conformance`).
fn assert_equal_across_threads<R: PartialEq + std::fmt::Debug>(
    label: &str,
    mut f: impl FnMut() -> R,
) -> R {
    let mut out = None;
    for backend in BACKENDS {
        out = Some(assert_equal_across_threads_on(backend, label, &mut f));
    }
    out.expect("at least one backend")
}

#[test]
fn gemm_kernels_bitwise_identical() {
    let (m, k, n) = (33, 29, 41);
    let mut rng = rng_from_seed(100);
    let a: Vec<f32> = Tensor::randn([m, k], &mut rng).as_slice().to_vec();
    let b: Vec<f32> = Tensor::randn([k, n], &mut rng).as_slice().to_vec();
    let at: Vec<f32> = Tensor::randn([k, m], &mut rng).as_slice().to_vec();
    let bt: Vec<f32> = Tensor::randn([n, k], &mut rng).as_slice().to_vec();

    assert_equal_across_threads("gemm", || gemm(&a, &b, m, k, n));
    assert_equal_across_threads("gemm_at_b", || gemm_at_b(&at, &b, m, k, n));
    assert_equal_across_threads("gemm_a_bt", || gemm_a_bt(&a, &bt, m, k, n));
}

#[test]
fn conv_pipeline_bitwise_identical() {
    let mut rng = rng_from_seed(101);
    let x = Tensor::randn([4, 3, 9, 9], &mut rng);
    let w = Tensor::randn([5, 3, 3, 3], &mut rng);
    let bias = Tensor::randn([5], &mut rng);
    let spec = ConvSpec::same(3);
    let dout = Tensor::randn([4, 5, 9, 9], &mut rng);

    assert_equal_across_threads("conv2d fwd+bwd", || {
        let fwd = conv2d_forward(&x, &w, &bias, spec).unwrap();
        let grads = conv2d_backward(&dout, &fwd.cols, &w, (4, 3, 9, 9), spec);
        (
            fwd.output,
            fwd.cols,
            grads.dinput,
            grads.dweight,
            grads.dbias,
        )
    });
}

#[test]
fn sync_training_step_bitwise_identical() {
    let train = SyntheticCifar::new(7)
        .difficulty(0.05)
        .generate_sized(64, 16);
    let test = SyntheticCifar::new(8)
        .difficulty(0.05)
        .generate_sized(16, 16);

    let (ckpt, loss, acc, eval) = assert_equal_across_threads("sync epoch", || {
        let cfg = SplitConfig::tiny(CutPoint(1), 2).epochs(1).seed(11);
        let mut t = SpatioTemporalTrainer::new(cfg, &train).unwrap();
        let (loss, acc) = t.run_epoch(0);
        let eval = t.evaluate(&test);
        let ckpt = t.checkpoint();
        (
            (ckpt.server_state, ckpt.client_states),
            loss.to_bits(),
            acc.to_bits(),
            eval.to_bits(),
        )
    });
    // Sanity: the run actually did something.
    assert!(!ckpt.0.is_empty());
    assert!(f32::from_bits(loss).is_finite());
    assert!(f32::from_bits(acc) >= 0.0);
    assert!(f32::from_bits(eval) >= 0.0);
}

#[test]
fn async_four_end_system_epoch_bitwise_identical() {
    let train = SyntheticCifar::new(9)
        .difficulty(0.05)
        .generate_sized(64, 16);
    let test = SyntheticCifar::new(10)
        .difficulty(0.05)
        .generate_sized(16, 16);

    let (csv, report_json) = assert_equal_across_threads("async epoch", || {
        let cfg = SplitConfig::tiny(CutPoint(1), 4)
            .epochs(1)
            .batch_size(8)
            .seed(13);
        // Heterogeneous latencies so arrival order interleaves non-trivially.
        let top = StarTopology::latency_gradient(4, 2.0, 40.0, 100.0);
        let mut t = AsyncSplitTrainer::new(
            cfg,
            &train,
            top,
            SchedulingPolicy::RoundRobin,
            ComputeModel::default(),
        )
        .unwrap();
        t.enable_trace();
        let report = t.run(&test);
        let csv = t.trace().expect("trace enabled").to_csv();
        (csv, serde_json::to_string(&report).unwrap())
    });

    // The trace must show all four end-systems reaching the server, and the
    // serialized report carries the exact final metrics — both were just
    // proven identical across thread counts, *including event order*.
    for client in 0..4 {
        assert!(
            csv.lines().any(|l| l.ends_with(&format!(",{client}"))),
            "end-system {client} missing from trace"
        );
    }
    assert!(report_json.contains("\"end_systems\":4"));
}
