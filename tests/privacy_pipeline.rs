//! Privacy stack integration: training → stage capture → triptych →
//! inversion attack, on trained (not random) encoders.

use spatio_temporal_split_learning::data::SyntheticCifar;
use spatio_temporal_split_learning::privacy::{
    measure_leakage, metrics::distance_correlation, visualize,
};
use spatio_temporal_split_learning::split::{CutPoint, SpatioTemporalTrainer, SplitConfig};
use spatio_temporal_split_learning::tensor::Tensor;

fn trained_client(
    cut: usize,
    train: &spatio_temporal_split_learning::data::ImageDataset,
) -> SpatioTemporalTrainer {
    let cfg = SplitConfig::tiny(CutPoint(cut), 1).epochs(1).seed(15);
    let mut t = SpatioTemporalTrainer::new(cfg, train).expect("valid config");
    let test = SyntheticCifar::new(16)
        .difficulty(0.08)
        .generate_sized(20, 16);
    t.train(&test);
    t
}

#[test]
fn fig4_pipeline_on_trained_encoder() {
    let train = SyntheticCifar::new(14)
        .difficulty(0.08)
        .generate_sized(80, 16);
    let mut trainer = trained_client(1, &train);
    let image = train.image(0);
    let client = trainer.clients_mut().first_mut().expect("one client");
    let stages = visualize::capture_stages(client.model_mut(), &image);
    assert_eq!(stages.len(), 4, "original + conv + relu + pool");
    // The conv stage keeps spatial resolution; pooling halves it.
    assert_eq!(stages[1].activation.dim(1), 16);
    assert_eq!(stages[3].activation.dim(1), 8);
    let trip = visualize::fig4_triptych(client.model_mut(), &image, 2);
    assert!(trip.width() > 3 * 16);
}

#[test]
fn pooling_reduces_structural_similarity_on_trained_weights() {
    let train = SyntheticCifar::new(30)
        .difficulty(0.08)
        .generate_sized(100, 16);
    let mut trainer = trained_client(1, &train);
    let client = trainer.clients_mut().first_mut().expect("one client");
    let mut conv_total = 0.0;
    let mut pool_total = 0.0;
    for i in 0..10 {
        let image = train.image(i);
        let stages = visualize::capture_stages(client.model_mut(), &image);
        conv_total += visualize::stage_similarity(&image, &stages[1].activation);
        pool_total += visualize::stage_similarity(&image, &stages[3].activation);
    }
    assert!(
        conv_total > pool_total,
        "trained encoder: conv similarity {:.3} must exceed pooled {:.3} (the Fig. 4 claim)",
        conv_total,
        pool_total
    );
}

#[test]
fn inversion_attack_against_trained_encoders_weakens_with_depth() {
    // The attack regression must be well-posed: use more auxiliary
    // samples (800) than the widest code (512 floats at cut 1), otherwise
    // the shallow cut's leakage is under-estimated for capacity reasons
    // rather than privacy reasons.
    let train = SyntheticCifar::new(30)
        .difficulty(0.08)
        .generate_sized(100, 16);
    let aux = SyntheticCifar::new(31)
        .difficulty(0.08)
        .generate_sized(800, 16);
    let victims = SyntheticCifar::new(32)
        .difficulty(0.08)
        .generate_sized(24, 16);
    let mut shallow = trained_client(1, &train);
    let mut deep = trained_client(3, &train);
    let sc = shallow.clients_mut().first_mut().expect("client");
    let r1 = measure_leakage(|x| sc.encode(x), &aux, &victims, 10, 0);
    let dc = deep.clients_mut().first_mut().expect("client");
    let r3 = measure_leakage(|x| dc.encode(x), &aux, &victims, 10, 0);
    assert!(
        r1.ssim > r3.ssim,
        "shallow cut must reconstruct more faithfully: ssim {:.3} vs {:.3}",
        r1.ssim,
        r3.ssim
    );
    assert!(
        r1.dcor > r3.dcor,
        "shallow activations must be more input-dependent: dcor {:.3} vs {:.3}",
        r1.dcor,
        r3.dcor
    );
    assert!(
        r1.psnr_db > r3.psnr_db - 0.5,
        "psnr should not invert materially: {:.2} dB vs {:.2} dB",
        r1.psnr_db,
        r3.psnr_db
    );
}

#[test]
fn smashed_activations_remain_statistically_dependent_on_inputs() {
    // Split learning hides pixels but the representation must stay
    // informative (otherwise the server could not learn) — dCor between
    // inputs and activations is well above zero even at the deepest cut.
    let train = SyntheticCifar::new(40)
        .difficulty(0.08)
        .generate_sized(60, 16);
    let mut trainer = trained_client(3, &train);
    let client = trainer.clients_mut().first_mut().expect("client");
    let idx: Vec<usize> = (0..40).collect();
    let (images, _) = train.batch(&idx);
    let codes = client.encode(&images);
    let n = images.dim(0);
    let d = distance_correlation(
        &images.reshape([n, images.len() / n]),
        &codes.reshape([n, codes.len() / n]),
    );
    assert!(d > 0.2, "dcor {} — activations lost all information", d);
}

#[test]
fn triptych_ppm_roundtrip_to_disk() {
    let train = SyntheticCifar::new(50)
        .difficulty(0.05)
        .generate_sized(40, 16);
    let mut trainer = trained_client(1, &train);
    let client = trainer.clients_mut().first_mut().expect("client");
    let trip = visualize::fig4_triptych(client.model_mut(), &train.image(3), 2);
    let dir = std::env::temp_dir().join("stsl_privacy_test");
    std::fs::create_dir_all(&dir).expect("tempdir");
    let path = dir.join("triptych.ppm");
    trip.save_ppm(&path).expect("save");
    let bytes = std::fs::read(&path).expect("read back");
    assert!(bytes.starts_with(b"P6\n"));
    assert_eq!(
        bytes.len(),
        format!("P6\n{} {}\n255\n", trip.width(), trip.height()).len()
            + 3 * trip.width() * trip.height()
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn random_vs_trained_encoder_both_support_attack_api() {
    // The attack API takes any encode closure — identity, random net,
    // trained net. Exercise the identity edge (maximum leakage).
    let aux = SyntheticCifar::new(60)
        .difficulty(0.05)
        .generate_sized(300, 8);
    let victims = SyntheticCifar::new(61)
        .difficulty(0.05)
        .generate_sized(16, 8);
    let id_report = measure_leakage(|x: &Tensor| x.clone(), &aux, &victims, 10, 1);
    assert!(
        id_report.dcor > 0.9,
        "identity encoder must be maximally dependent"
    );
}
