//! Cross-crate property-based tests: protocol round-trips, partition
//! invariants and model-splitting laws under randomized inputs.

use proptest::prelude::*;
use spatio_temporal_split_learning::data::{Partition, SyntheticCifar};
use spatio_temporal_split_learning::nn::Mode;
use spatio_temporal_split_learning::simnet::EndSystemId;
use spatio_temporal_split_learning::split::protocol::{ActivationMsg, BatchId, GradientMsg};
use spatio_temporal_split_learning::split::{CnnArch, CutPoint};
use spatio_temporal_split_learning::tensor::init::rng_from_seed;
use spatio_temporal_split_learning::tensor::Tensor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn activation_messages_roundtrip(
        n in 1usize..5, c in 1usize..9, hw in 1usize..9,
        from in 0usize..16, epoch in 0u32..100, batch in 0u32..1000,
        seed in 0u64..1000
    ) {
        let msg = ActivationMsg {
            from: EndSystemId(from),
            batch_id: BatchId { epoch, batch },
            activations: Tensor::randn([n, c, hw, hw], &mut rng_from_seed(seed)),
            targets: (0..n).map(|i| i % 10).collect(),
        };
        let encoded = msg.encode();
        prop_assert_eq!(encoded.len(), msg.encoded_len());
        prop_assert_eq!(ActivationMsg::decode(encoded), msg);
    }

    #[test]
    fn gradient_messages_roundtrip(
        dims in prop::collection::vec(1usize..6, 1..4),
        to in 0usize..16, seed in 0u64..1000
    ) {
        let msg = GradientMsg {
            to: EndSystemId(to),
            batch_id: BatchId { epoch: 0, batch: 0 },
            grad: Tensor::randn(dims, &mut rng_from_seed(seed)),
        };
        let encoded = msg.encode();
        prop_assert_eq!(encoded.len(), msg.encoded_len());
        prop_assert_eq!(GradientMsg::decode(encoded), msg);
    }

    #[test]
    fn partitions_are_exact_covers(
        clients in 1usize..7, seed in 0u64..100, alpha in 0.05f32..2.0
    ) {
        let data = SyntheticCifar::new(1).difficulty(0.0).generate_sized(60, 8);
        for partition in [Partition::Iid, Partition::Dirichlet { alpha }] {
            let sets = partition.split_indices(&data, clients, seed);
            prop_assert_eq!(sets.len(), clients);
            let mut all: Vec<usize> = sets.iter().flatten().copied().collect();
            all.sort_unstable();
            prop_assert_eq!(all, (0..60).collect::<Vec<_>>());
            prop_assert!(sets.iter().all(|s| !s.is_empty()));
        }
    }

    #[test]
    fn model_split_composes_at_every_cut(cut in 0usize..4, seed in 0u64..50) {
        let arch = CnnArch::tiny();
        let mut full = arch.build(seed);
        let (mut lower, mut upper) = arch.build(seed).split_at(CutPoint(cut).layer_index());
        let x = Tensor::randn([2, 3, 16, 16], &mut rng_from_seed(seed + 1));
        let direct = full.forward(&x, Mode::Eval);
        let composed = upper.forward(&lower.forward(&x, Mode::Eval), Mode::Eval);
        prop_assert_eq!(direct, composed);
    }

    #[test]
    fn cut_dims_predict_encoder_output(cut in 0usize..4, n in 1usize..4, seed in 0u64..50) {
        let arch = CnnArch::tiny();
        let (mut lower, _) = arch.build_split(CutPoint(cut), seed);
        let x = Tensor::randn([n, 3, 16, 16], &mut rng_from_seed(seed));
        let smashed = lower.forward(&x, Mode::Eval);
        let expected = arch.cut_dims(CutPoint(cut), n);
        prop_assert_eq!(smashed.dims(), expected.as_slice());
    }
}
