//! Cross-crate property-based tests: protocol round-trips, partition
//! invariants and model-splitting laws under randomized inputs.

use proptest::prelude::*;
use rand::Rng;
use spatio_temporal_split_learning::data::{Partition, SyntheticCifar};
use spatio_temporal_split_learning::nn::Mode;
use spatio_temporal_split_learning::simnet::EndSystemId;
use spatio_temporal_split_learning::split::protocol::{
    ActivationMsg, BatchId, GradientMsg, WIRE_HEADER_BYTES,
};
use spatio_temporal_split_learning::split::{combine, AggregationPolicy, CnnArch, CutPoint};
use spatio_temporal_split_learning::tensor::init::rng_from_seed;
use spatio_temporal_split_learning::tensor::Tensor;

/// Every aggregation policy under test, parameterized by a small-int
/// strategy so proptest can shrink across them.
fn policy_from(which: u8, trim: f32, f: usize) -> AggregationPolicy {
    match which % 5 {
        0 => AggregationPolicy::Mean,
        1 => AggregationPolicy::CoordinateMedian,
        2 => AggregationPolicy::TrimmedMean { trim },
        3 => AggregationPolicy::NormClippedMean,
        _ => AggregationPolicy::Krum {
            assumed_attackers: f,
        },
    }
}

/// A window of `n` random updates of dimension `dim`.
fn random_window(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = rng_from_seed(seed);
    (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(-3.0f32..3.0)).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn activation_messages_roundtrip(
        n in 1usize..5, c in 1usize..9, hw in 1usize..9,
        from in 0usize..16, epoch in 0u32..100, batch in 0u32..1000,
        seed in 0u64..1000
    ) {
        let msg = ActivationMsg {
            from: EndSystemId(from),
            batch_id: BatchId { epoch, batch },
            activations: Tensor::randn([n, c, hw, hw], &mut rng_from_seed(seed)),
            targets: (0..n).map(|i| i % 10).collect(),
        };
        let encoded = msg.encode();
        prop_assert_eq!(encoded.len(), msg.encoded_len());
        prop_assert_eq!(ActivationMsg::decode(encoded), Ok(msg));
    }

    #[test]
    fn gradient_messages_roundtrip(
        dims in prop::collection::vec(1usize..6, 1..4),
        to in 0usize..16, seed in 0u64..1000
    ) {
        let msg = GradientMsg {
            to: EndSystemId(to),
            batch_id: BatchId { epoch: 0, batch: 0 },
            grad: Tensor::randn(dims, &mut rng_from_seed(seed)),
        };
        let encoded = msg.encode();
        prop_assert_eq!(encoded.len(), msg.encoded_len());
        prop_assert_eq!(GradientMsg::decode(encoded), Ok(msg));
    }

    /// A single bit flip anywhere in an activation frame must surface as a
    /// typed error — never a panic, never a silently accepted frame.
    #[test]
    fn bit_flipped_activation_frames_always_err(
        n in 1usize..4, c in 1usize..6, hw in 1usize..6,
        seed in 0u64..1000, byte_frac in 0.0f64..1.0, bit in 0u8..8
    ) {
        let msg = ActivationMsg {
            from: EndSystemId(1),
            batch_id: BatchId { epoch: 1, batch: 2 },
            activations: Tensor::randn([n, c, hw, hw], &mut rng_from_seed(seed)),
            targets: (0..n).map(|i| i % 10).collect(),
        };
        let mut raw = msg.encode().as_ref().to_vec();
        let idx = ((raw.len() - 1) as f64 * byte_frac) as usize;
        raw[idx] ^= 1 << bit;
        // Flipping a bit inside the stored CRC field itself leaves the
        // payload intact, so the checksum (recomputed over the payload)
        // no longer matches the header — still an error. Every other
        // position corrupts payload or framing. Either way: Err.
        prop_assert!(ActivationMsg::decode(raw.into()).is_err());
    }

    #[test]
    fn bit_flipped_gradient_frames_always_err(
        dims in prop::collection::vec(1usize..6, 1..4),
        seed in 0u64..1000, byte_frac in 0.0f64..1.0, bit in 0u8..8
    ) {
        let msg = GradientMsg {
            to: EndSystemId(0),
            batch_id: BatchId { epoch: 3, batch: 4 },
            grad: Tensor::randn(dims, &mut rng_from_seed(seed)),
        };
        let mut raw = msg.encode().as_ref().to_vec();
        let idx = ((raw.len() - 1) as f64 * byte_frac) as usize;
        raw[idx] ^= 1 << bit;
        prop_assert!(GradientMsg::decode(raw.into()).is_err());
    }

    /// Truncation at any prefix length — header, mid-tensor, last byte —
    /// returns Err from both the checked and unchecked decoders.
    #[test]
    fn truncated_frames_never_panic(
        n in 1usize..4, hw in 1usize..6, seed in 0u64..1000,
        keep_frac in 0.0f64..1.0
    ) {
        let msg = ActivationMsg {
            from: EndSystemId(2),
            batch_id: BatchId { epoch: 0, batch: 7 },
            activations: Tensor::randn([n, 2, hw, hw], &mut rng_from_seed(seed)),
            targets: (0..n).map(|i| i % 10).collect(),
        };
        let raw = msg.encode().as_ref().to_vec();
        let keep = ((raw.len() - 1) as f64 * keep_frac) as usize;
        let cut = raw[..keep].to_vec();
        prop_assert!(ActivationMsg::decode(cut.clone().into()).is_err());
        prop_assert!(ActivationMsg::decode_lenient(cut.into()).is_err());
    }

    /// Arbitrary byte soup — with or without a plausible-looking header —
    /// must decode to Err on both message types without panicking.
    #[test]
    fn random_bytes_never_panic(
        mut soup in prop::collection::vec(0u8..=255, 0..256),
        with_header in 0u8..2
    ) {
        if with_header == 1 && soup.len() >= WIRE_HEADER_BYTES {
            // Graft a valid-looking prefix so decoding reaches the
            // payload parser instead of bailing at the magic check.
            soup[0..4].copy_from_slice(b"STSL");
            soup[4] = 1;
            soup[5] = 0xA5;
            let len = (soup.len() - WIRE_HEADER_BYTES) as u32;
            soup[6..10].copy_from_slice(&len.to_le_bytes());
        }
        let _ = ActivationMsg::decode(soup.clone().into());
        let _ = ActivationMsg::decode_lenient(soup.clone().into());
        let _ = GradientMsg::decode(soup.clone().into());
        let _ = GradientMsg::decode_lenient(soup.into());
    }

    #[test]
    fn partitions_are_exact_covers(
        clients in 1usize..7, seed in 0u64..100, alpha in 0.05f32..2.0
    ) {
        let data = SyntheticCifar::new(1).difficulty(0.0).generate_sized(60, 8);
        for partition in [Partition::Iid, Partition::Dirichlet { alpha }] {
            let sets = partition.split_indices(&data, clients, seed);
            prop_assert_eq!(sets.len(), clients);
            let mut all: Vec<usize> = sets.iter().flatten().copied().collect();
            all.sort_unstable();
            prop_assert_eq!(all, (0..60).collect::<Vec<_>>());
            prop_assert!(sets.iter().all(|s| !s.is_empty()));
        }
    }

    #[test]
    fn model_split_composes_at_every_cut(cut in 0usize..4, seed in 0u64..50) {
        let arch = CnnArch::tiny();
        let mut full = arch.build(seed);
        let (mut lower, mut upper) = arch.build(seed).split_at(CutPoint(cut).layer_index());
        let x = Tensor::randn([2, 3, 16, 16], &mut rng_from_seed(seed + 1));
        let direct = full.forward(&x, Mode::Eval);
        let composed = upper.forward(&lower.forward(&x, Mode::Eval), Mode::Eval);
        prop_assert_eq!(direct, composed);
    }

    /// R1 for the aggregation seam: every policy is *bitwise* invariant
    /// to the arrival order of the window — the property that makes the
    /// poison sweep byte-identical across STSL_THREADS settings.
    #[test]
    fn aggregation_is_bitwise_permutation_invariant(
        which in 0u8..5, n in 2usize..8, dim in 1usize..6,
        seed in 0u64..500, rot in 1usize..7, trim in 0.0f32..0.49,
        f in 0usize..3
    ) {
        let policy = policy_from(which, trim, f);
        let u = random_window(n, dim, seed);
        let mut perm = u.clone();
        perm.rotate_left(rot % n);
        if n >= 2 { perm.swap(0, n - 1); }
        let a = combine(policy, &u).unwrap();
        let b = combine(policy, &perm).unwrap();
        prop_assert_eq!(a.combined, b.combined);
        prop_assert_eq!(a.trimmed, b.trimmed);
    }

    /// Trimming nothing must be *exactly* the mean — same floats, not
    /// merely close — so `TrimmedMean { trim: 0.0 }` can serve as a
    /// drop-in mean with outlier reporting.
    #[test]
    fn trim_zero_is_bitwise_mean(
        n in 1usize..8, dim in 1usize..6, seed in 0u64..500
    ) {
        let u = random_window(n, dim, seed);
        let a = combine(AggregationPolicy::TrimmedMean { trim: 0.0 }, &u).unwrap();
        let b = combine(AggregationPolicy::Mean, &u).unwrap();
        prop_assert_eq!(a.combined, b.combined);
    }

    /// The classical robustness guarantee: with at most `f` attackers in
    /// a window of `2f + 1` or more updates, coordinate-median and
    /// trimmed mean (trim depth ≥ f) stay inside the honest coordinate
    /// range — no attacker value, however extreme, can drag a coordinate
    /// past the honest envelope.
    #[test]
    fn median_and_trimmed_stay_in_honest_range(
        extra in 0usize..5, f in 1usize..3, dim in 1usize..5,
        seed in 0u64..500, gain in 1.0f32..100.0
    ) {
        // Honest majority by construction: n_honest = 2f + 1 + extra.
        let honest_n = 2 * f + 1 + extra;
        let honest = random_window(honest_n, dim, seed);
        let mut window = honest.clone();
        for a in 0..f {
            // Adversarial update: huge alternating-sign coordinates.
            window.push(
                (0..dim)
                    .map(|j| if (a + j) % 2 == 0 { gain * 50.0 } else { -gain * 50.0 })
                    .collect(),
            );
        }
        let n = window.len();
        let trim = (f as f32 + 0.5) / n as f32; // depth ≥ f each side
        for policy in [
            AggregationPolicy::CoordinateMedian,
            AggregationPolicy::TrimmedMean { trim },
        ] {
            let out = combine(policy, &window).unwrap();
            for j in 0..dim {
                let lo = honest.iter().map(|h| h[j]).fold(f32::INFINITY, f32::min);
                let hi = honest.iter().map(|h| h[j]).fold(f32::NEG_INFINITY, f32::max);
                prop_assert!(
                    out.combined[j] >= lo && out.combined[j] <= hi,
                    "{:?} coordinate {} = {} escaped honest range [{}, {}]",
                    policy, j, out.combined[j], lo, hi
                );
            }
        }
    }

    #[test]
    fn cut_dims_predict_encoder_output(cut in 0usize..4, n in 1usize..4, seed in 0u64..50) {
        let arch = CnnArch::tiny();
        let (mut lower, _) = arch.build_split(CutPoint(cut), seed);
        let x = Tensor::randn([n, 3, 16, 16], &mut rng_from_seed(seed));
        let smashed = lower.forward(&x, Mode::Eval);
        let expected = arch.cut_dims(CutPoint(cut), n);
        prop_assert_eq!(smashed.dims(), expected.as_slice());
    }
}
