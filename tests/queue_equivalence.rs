//! Calendar-queue / binary-heap equivalence — the contract of the
//! `stsl-simnet` event-queue seam.
//!
//! The fleet subsystem swaps the reference `BinaryHeap` event queue for
//! an O(log n)-amortized calendar queue, selected exactly like the
//! numeric `Backend` (scope context → `STSL_QUEUE` → default). Unlike
//! the numeric backends, the two queues must be **bitwise identical** in
//! observable behavior: same `(time, seq)` pop order for every
//! interleaving of schedules and pops, including same-timestamp bursts
//! (where only the insertion sequence number breaks the tie) and
//! far-future events that land outside the calendar's current lap.
//!
//! Three layers pin the contract: randomized queue-level interleavings
//! (proptest), a four-end-system async training epoch whose event trace
//! CSV must match byte-for-byte, and the fleet trainer's debug report.

use proptest::prelude::*;
use spatio_temporal_split_learning::data::SyntheticCifar;
use spatio_temporal_split_learning::simnet::{
    with_queue_kind, EventQueue, Link, QueueKind, SimTime, StarTopology,
};
use spatio_temporal_split_learning::split::{
    AsyncSplitTrainer, ComputeModel, CutPoint, FleetConfig, FleetTrainer, SchedulingPolicy,
    SplitConfig,
};

const BOTH: [QueueKind; 2] = [QueueKind::Reference, QueueKind::Calendar];

/// Replays `ops` against a fresh queue of the given kind and returns the
/// observable history: every pop's `(fire_time_us, payload)` plus the
/// final drain order.
fn replay(kind: QueueKind, ops: &[QueueOp]) -> Vec<(u64, u32)> {
    let mut q: EventQueue<u32> = EventQueue::with_kind(kind);
    let mut history = Vec::new();
    let mut next_payload = 0u32;
    for op in ops {
        match *op {
            QueueOp::Schedule(at_us) => {
                q.schedule(SimTime::from_micros(at_us), next_payload);
                next_payload += 1;
            }
            QueueOp::Pop => {
                if let Some((t, p)) = q.pop() {
                    history.push((t.as_micros(), p));
                }
            }
        }
    }
    while let Some((t, p)) = q.pop() {
        history.push((t.as_micros(), p));
    }
    history
}

#[derive(Debug, Clone, Copy)]
enum QueueOp {
    Schedule(u64),
    Pop,
}

/// Strategy: a mixed script of schedules and pops. Timestamps cluster in
/// a dense band (forcing same-bucket and same-timestamp collisions) with
/// occasional far-future spikes (forcing the calendar's dry-lap
/// global-minimum fallback) and many exact duplicates (tie-break purely
/// on sequence number).
fn ops_strategy() -> impl Strategy<Value = Vec<QueueOp>> {
    prop::collection::vec((0u64..100, 0u8..4), 1..200).prop_map(|raw| {
        raw.into_iter()
            .map(|(t, sel)| match sel {
                // Dense band with heavy duplicate timestamps.
                0 => QueueOp::Schedule(t % 16),
                1 => QueueOp::Schedule(t * 1_000),
                // Far future: outside any initial calendar lap.
                2 => QueueOp::Schedule(10_000_000 + t * 999_983),
                _ => QueueOp::Pop,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn calendar_and_heap_pop_identically(ops in ops_strategy()) {
        let reference = replay(QueueKind::Reference, &ops);
        let calendar = replay(QueueKind::Calendar, &ops);
        prop_assert_eq!(reference, calendar);
    }
}

#[test]
fn same_timestamp_burst_breaks_ties_by_sequence() {
    // 1000 events on one timestamp: pop order must be insertion order
    // for both kinds (seq is the only tie-break).
    for kind in BOTH {
        let mut q: EventQueue<u32> = EventQueue::with_kind(kind);
        for i in 0..1000u32 {
            q.schedule(SimTime::from_micros(42), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..1000).collect::<Vec<u32>>(), "kind {kind:?}");
    }
}

#[test]
fn four_client_async_trace_is_bitwise_identical_across_queue_kinds() {
    let train = SyntheticCifar::new(5).generate_sized(96, 16);
    let test = SyntheticCifar::new(6).generate_sized(24, 16);
    let run = |kind: QueueKind| {
        with_queue_kind(kind, || {
            let cfg = SplitConfig::tiny(CutPoint(1), 4).epochs(1).seed(9);
            let mut t = AsyncSplitTrainer::new(
                cfg,
                &train,
                StarTopology::uniform(4, Link::wan(20.0, 100.0)),
                SchedulingPolicy::RoundRobin,
                ComputeModel::default(),
            )
            .expect("valid config");
            t.enable_trace();
            let report = t.run(&test);
            let csv = t.trace().expect("trace enabled").to_csv();
            (csv, format!("{report:?}"))
        })
    };
    let (csv_ref, report_ref) = run(QueueKind::Reference);
    let (csv_cal, report_cal) = run(QueueKind::Calendar);
    assert_eq!(csv_ref, csv_cal, "trace CSV must match byte-for-byte");
    assert_eq!(report_ref, report_cal);
}

#[test]
fn fleet_report_is_identical_across_queue_kinds() {
    let train = SyntheticCifar::new(3)
        .difficulty(0.05)
        .generate_sized(64, 16);
    let test = SyntheticCifar::new(4)
        .difficulty(0.05)
        .generate_sized(16, 16);
    let run = |kind: QueueKind| {
        with_queue_kind(kind, || {
            let mut fleet =
                FleetTrainer::new(FleetConfig::smoke(50), &train).expect("smoke config is valid");
            format!("{:?}", fleet.run(&test))
        })
    };
    assert_eq!(run(QueueKind::Reference), run(QueueKind::Calendar));
}
