//! The central correctness property of split learning: cutting a network
//! into a client half and a server half and training across the cut is
//! **mathematically identical** to training the unsplit network on the
//! same batch sequence.

use spatio_temporal_split_learning::data::SyntheticCifar;
use spatio_temporal_split_learning::nn::loss::{Loss, SoftmaxCrossEntropy};
use spatio_temporal_split_learning::nn::optim::Sgd;
use spatio_temporal_split_learning::nn::{Mode, Sequential};
use spatio_temporal_split_learning::split::{CnnArch, CutPoint};
use spatio_temporal_split_learning::tensor::Tensor;

fn batches() -> Vec<(Tensor, Vec<usize>)> {
    let data = SyntheticCifar::new(4)
        .difficulty(0.1)
        .generate_sized(48, 16);
    (0..3)
        .map(|b| {
            let idx: Vec<usize> = (b * 16..(b + 1) * 16).collect();
            data.batch(&idx)
        })
        .collect()
}

fn train_full(seed: u64, lr: f32) -> Sequential {
    let mut net = CnnArch::tiny().build(seed);
    let loss = SoftmaxCrossEntropy::new();
    let mut opt = Sgd::new(lr);
    for (x, y) in batches() {
        net.train_batch(&x, &y, &loss, &mut opt);
    }
    net
}

fn train_split(seed: u64, lr: f32, cut: usize) -> (Sequential, Sequential) {
    let (mut lower, mut upper) = CnnArch::tiny()
        .build(seed)
        .split_at(CutPoint(cut).layer_index());
    let loss = SoftmaxCrossEntropy::new();
    // Separate optimizers per half, exactly like the deployed protocol.
    let mut client_opt = Sgd::new(lr);
    let mut server_opt = Sgd::new(lr);
    for (x, y) in batches() {
        lower.zero_grads();
        upper.zero_grads();
        let smashed = lower.forward(&x, Mode::Train);
        let logits = upper.forward(&smashed, Mode::Train);
        let out = loss.forward(&logits, &y);
        let cut_grad = upper.backward(&out.grad);
        lower.backward(&cut_grad);
        upper.step(&mut server_opt);
        lower.step(&mut client_opt);
    }
    (lower, upper)
}

#[test]
fn split_training_equals_full_training() {
    for cut in [1usize, 2] {
        let mut full = train_full(33, 0.01);
        let (mut lower, mut upper) = train_split(33, 0.01, cut);
        let probe = SyntheticCifar::new(5).difficulty(0.1).generate_sized(8, 16);
        let (x, _) = probe.batch(&(0..8).collect::<Vec<_>>());
        let expected = full.forward(&x, Mode::Eval);
        let smashed = lower.forward(&x, Mode::Eval);
        let got = upper.forward(&smashed, Mode::Eval);
        assert!(
            got.allclose(&expected, 1e-4),
            "cut {}: split-trained and full-trained networks diverged",
            cut
        );
    }
}

#[test]
fn split_training_weights_match_full_training() {
    let mut full = train_full(7, 0.02);
    let (mut lower, mut upper) = train_split(7, 0.02, 2);
    let mut split_state = lower.state_dict();
    split_state.extend(upper.state_dict());
    let full_state = full.state_dict();
    assert_eq!(split_state.len(), full_state.len());
    for (i, (a, b)) in split_state.iter().zip(&full_state).enumerate() {
        assert!(a.allclose(b, 1e-4), "parameter tensor {} diverged", i);
    }
}

#[test]
fn momentum_optimizers_also_match() {
    // Momentum state lives per-half in split training; the equivalence
    // must hold regardless because the parameter sets are disjoint.
    let lr = 0.01;
    let mut full = {
        let mut net = CnnArch::tiny().build(99);
        let loss = SoftmaxCrossEntropy::new();
        let mut opt = Sgd::new(lr).momentum(0.9);
        for (x, y) in batches() {
            net.train_batch(&x, &y, &loss, &mut opt);
        }
        net
    };
    let (mut lower, mut upper) = {
        let (mut lower, mut upper) = CnnArch::tiny()
            .build(99)
            .split_at(CutPoint(1).layer_index());
        let loss = SoftmaxCrossEntropy::new();
        let mut client_opt = Sgd::new(lr).momentum(0.9);
        let mut server_opt = Sgd::new(lr).momentum(0.9);
        for (x, y) in batches() {
            lower.zero_grads();
            upper.zero_grads();
            let smashed = lower.forward(&x, Mode::Train);
            let logits = upper.forward(&smashed, Mode::Train);
            let out = loss.forward(&logits, &y);
            let cut_grad = upper.backward(&out.grad);
            lower.backward(&cut_grad);
            upper.step(&mut server_opt);
            lower.step(&mut client_opt);
        }
        (lower, upper)
    };
    let probe = SyntheticCifar::new(6).generate_sized(4, 16);
    let (x, _) = probe.batch(&[0, 1, 2, 3]);
    let expected = full.forward(&x, Mode::Eval);
    let smashed = lower.forward(&x, Mode::Eval);
    let got = upper.forward(&smashed, Mode::Eval);
    assert!(
        got.allclose(&expected, 1e-4),
        "momentum split training diverged from full"
    );
}
