//! Telemetry determinism contract: histogram merge laws under randomized
//! inputs, and bitwise-identical telemetry exports (snapshots, journal,
//! dashboard) for any thread count.
//!
//! Thread counts are forced with [`parallel::with_threads`], which takes
//! precedence over `STSL_THREADS`, so the suite proves the same thing no
//! matter what CI sets the variable to.

use proptest::prelude::*;
use spatio_temporal_split_learning::data::SyntheticCifar;
use spatio_temporal_split_learning::parallel;
use spatio_temporal_split_learning::simnet::{Link, SimDuration, StarTopology};
use spatio_temporal_split_learning::split::{
    AsyncSplitTrainer, ComputeModel, CutPoint, SchedulingPolicy, SplitConfig,
};
use spatio_temporal_split_learning::telemetry::{render_dashboard, Histogram};

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Merging histograms is associative: (a ∪ b) ∪ c == a ∪ (b ∪ c).
    #[test]
    fn histogram_merge_is_associative(
        a in prop::collection::vec(0u64..1_000_000, 0..40),
        b in prop::collection::vec(0u64..1_000_000, 0..40),
        c in prop::collection::vec(0u64..1_000_000, 0..40),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Merging histograms is commutative: a ∪ b == b ∪ a.
    #[test]
    fn histogram_merge_is_commutative(
        a in prop::collection::vec(0u64..1_000_000, 0..60),
        b in prop::collection::vec(0u64..1_000_000, 0..60),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    /// Merging equals recording everything into one histogram, so sharded
    /// collection can never drift from centralized collection.
    #[test]
    fn histogram_merge_matches_union(
        a in prop::collection::vec(0u64..1_000_000, 0..60),
        b in prop::collection::vec(0u64..1_000_000, 0..60),
    ) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let mut both: Vec<u64> = a.clone();
        both.extend_from_slice(&b);
        prop_assert_eq!(merged, hist_of(&both));
    }
}

/// A full asynchronous run with telemetry attached exports bitwise
/// identical snapshots, journal and dashboard at 1, 2 and 4 threads.
#[test]
fn telemetry_export_bitwise_identical_across_threads() {
    let run = || {
        let train = SyntheticCifar::new(5)
            .difficulty(0.1)
            .generate_sized(48, 16);
        let test = SyntheticCifar::new(6)
            .difficulty(0.1)
            .generate_sized(16, 16);
        let cfg = SplitConfig::tiny(CutPoint(1), 3)
            .epochs(2)
            .batch_size(8)
            .seed(11);
        let top = StarTopology::new(vec![
            Link::wan(5.0, 100.0),
            Link::wan(40.0, 100.0),
            Link::wan(90.0, 100.0),
        ]);
        let mut t = AsyncSplitTrainer::new(
            cfg,
            &train,
            top,
            SchedulingPolicy::Fifo,
            ComputeModel::default(),
        )
        .unwrap()
        .with_telemetry(SimDuration::from_millis(100), 512);
        let report = t.run(&test);
        let hub = t.telemetry().expect("telemetry enabled");
        let dashboard = hub
            .latest_snapshot()
            .map(render_dashboard)
            .unwrap_or_default();
        (
            hub.export_json(),
            hub.journal_log().to_jsonl(),
            dashboard,
            report.snapshots_emitted,
            report.journal_dropped,
        )
    };
    let serial = parallel::with_threads(1, run);
    for threads in [2, 4] {
        let par = parallel::with_threads(threads, run);
        assert_eq!(
            serial, par,
            "telemetry export diverged at {threads} threads"
        );
    }
    assert!(serial.3 > 0, "the run should have emitted snapshots");
    assert!(serial.0.contains("gradient_staleness_us"));
}
